"""The Pixels-like columnar file format.

File layout (all little-endian)::

    "PIXL" | column-chunk bytes ... | footer JSON | footer length u32 | "PIXL"

The footer records the schema and, per row group, per column: byte offset,
length, encoding, and zone-map statistics.  Readers fetch the footer with
two small range-GETs and then fetch *only* the chunks the projection needs
from row groups the predicates cannot rule out — so the object-store
``bytes_read`` counter measures true bytes scanned.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CorruptFileError, NoSuchColumnError
from repro.storage.cache import DEFAULT_COALESCE_GAP_BYTES, BufferPool
from repro.storage.columnar import (
    ColumnChunkStats,
    Encoding,
    choose_encoding,
    compute_stats,
    decode_chunk,
    encode_chunk,
)
from repro.storage.object_store import ObjectStore, StoreView
from repro.storage.types import ColumnVector, DataType

MAGIC = b"PIXL"
FORMAT_VERSION = 1


@dataclass(frozen=True)
class ChunkMeta:
    """Footer entry for one column chunk."""

    column: str
    offset: int
    length: int
    encoding: Encoding
    stats: ColumnChunkStats

    def to_json(self) -> dict:
        return {
            "column": self.column,
            "offset": self.offset,
            "length": self.length,
            "encoding": self.encoding.value,
            "num_rows": self.stats.num_rows,
            "null_count": self.stats.null_count,
            "min": self.stats.min_value,
            "max": self.stats.max_value,
        }

    @staticmethod
    def from_json(payload: dict) -> "ChunkMeta":
        stats = ColumnChunkStats(
            num_rows=payload["num_rows"],
            null_count=payload["null_count"],
            min_value=payload["min"],
            max_value=payload["max"],
        )
        return ChunkMeta(
            column=payload["column"],
            offset=payload["offset"],
            length=payload["length"],
            encoding=Encoding(payload["encoding"]),
            stats=stats,
        )


@dataclass(frozen=True)
class RowGroupMeta:
    """Footer entry for one row group."""

    num_rows: int
    chunks: dict[str, ChunkMeta]

    def to_json(self) -> dict:
        return {
            "num_rows": self.num_rows,
            "chunks": [chunk.to_json() for chunk in self.chunks.values()],
        }

    @staticmethod
    def from_json(payload: dict) -> "RowGroupMeta":
        chunks = {
            entry["column"]: ChunkMeta.from_json(entry)
            for entry in payload["chunks"]
        }
        return RowGroupMeta(num_rows=payload["num_rows"], chunks=chunks)


@dataclass(frozen=True)
class FileFooter:
    """The file's complete metadata."""

    num_rows: int
    schema: list[tuple[str, DataType]]
    row_groups: list[RowGroupMeta]

    def to_bytes(self) -> bytes:
        payload = {
            "version": FORMAT_VERSION,
            "num_rows": self.num_rows,
            "schema": [[name, dtype.value] for name, dtype in self.schema],
            "row_groups": [group.to_json() for group in self.row_groups],
        }
        return json.dumps(payload, separators=(",", ":")).encode("utf-8")

    @staticmethod
    def from_bytes(blob: bytes) -> "FileFooter":
        try:
            payload = json.loads(blob.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptFileError(f"unreadable footer: {exc}") from exc
        if payload.get("version") != FORMAT_VERSION:
            raise CorruptFileError(
                f"unsupported format version {payload.get('version')}"
            )
        schema = [(name, DataType(type_name)) for name, type_name in payload["schema"]]
        groups = [RowGroupMeta.from_json(entry) for entry in payload["row_groups"]]
        return FileFooter(payload["num_rows"], schema, groups)


class PixelsWriter:
    """Writes one columnar file to the object store.

    Usage::

        writer = PixelsWriter(store, "bucket", "tpch/orders/part-0.pxl",
                              schema=[("o_orderkey", DataType.BIGINT), ...])
        writer.write_row_group({"o_orderkey": vector, ...})
        writer.close()
    """

    def __init__(
        self,
        store: ObjectStore,
        bucket: str,
        key: str,
        schema: list[tuple[str, DataType]],
    ) -> None:
        if not schema:
            raise ValueError("schema must have at least one column")
        self._store = store
        self._bucket = bucket
        self._key = key
        self._schema = list(schema)
        self._buffer = bytearray(MAGIC)
        self._row_groups: list[RowGroupMeta] = []
        self._num_rows = 0
        self._closed = False

    def write_row_group(self, columns: dict[str, ColumnVector]) -> None:
        """Append a row group; ``columns`` must cover the schema exactly."""
        if self._closed:
            raise ValueError("writer already closed")
        expected = {name for name, _ in self._schema}
        if set(columns) != expected:
            raise ValueError(
                f"row group columns {sorted(columns)} != schema {sorted(expected)}"
            )
        lengths = {len(vector) for vector in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged row group: column lengths {lengths}")
        (group_rows,) = lengths
        chunks: dict[str, ChunkMeta] = {}
        for name, dtype in self._schema:
            vector = columns[name]
            if vector.dtype is not dtype:
                raise ValueError(
                    f"column {name!r}: expected {dtype}, got {vector.dtype}"
                )
            encoding = choose_encoding(vector)
            blob = encode_chunk(vector, encoding)
            chunks[name] = ChunkMeta(
                column=name,
                offset=len(self._buffer),
                length=len(blob),
                encoding=encoding,
                stats=compute_stats(vector),
            )
            self._buffer.extend(blob)
        self._row_groups.append(RowGroupMeta(group_rows, chunks))
        self._num_rows += group_rows

    def close(self) -> int:
        """Finalize and upload the file; returns its total size in bytes."""
        if self._closed:
            raise ValueError("writer already closed")
        self._closed = True
        footer = FileFooter(self._num_rows, self._schema, self._row_groups)
        footer_blob = footer.to_bytes()
        self._buffer.extend(footer_blob)
        self._buffer.extend(struct.pack("<I", len(footer_blob)))
        self._buffer.extend(MAGIC)
        self._store.put(self._bucket, self._key, bytes(self._buffer))
        return len(self._buffer)


class PixelsReader:
    """Reads a columnar file with projection and zone-map row-group skipping.

    The reader issues range-GETs through the object store, so all bytes it
    physically touches are visible in ``store.metrics.bytes_read``.  Two
    read-path optimizations sit on top:

    * an optional :class:`~repro.storage.cache.BufferPool` serves footers
      and column chunks from memory (etag-validated), skipping GETs;
    * chunk reads for the same row group are **coalesced** — adjacent (or
      nearly adjacent, up to a max-gap budget) chunks are fetched with one
      ranged GET instead of one GET per column.

    Neither changes what a query is billed: the reader accounts every
    footer/chunk byte it *needed* in ``metrics.logical_bytes_scanned``
    regardless of where the bytes came from, and coalescing gap bytes are
    never logical.
    """

    def __init__(
        self,
        store: ObjectStore | StoreView,
        bucket: str,
        key: str,
        cache: "BufferPool | None" = None,
        max_coalesce_gap: int | None = None,
        footer: FileFooter | None = None,
    ) -> None:
        self._store = store
        self._bucket = bucket
        self._key = key
        self._cache = cache
        if max_coalesce_gap is not None:
            self._max_gap = max_coalesce_gap
        elif cache is not None:
            self._max_gap = cache.config.max_coalesce_gap_bytes
        else:
            self._max_gap = DEFAULT_COALESCE_GAP_BYTES
        # An injected footer (the morsel driver prefetches footers once on
        # the coordinator) skips the footer read *and* its accounting — the
        # prefetch already accounted it exactly once.
        self._footer = footer if footer is not None else self._read_footer()

    @property
    def footer(self) -> FileFooter:
        return self._footer

    @property
    def num_rows(self) -> int:
        return self._footer.num_rows

    @property
    def schema(self) -> list[tuple[str, DataType]]:
        return list(self._footer.schema)

    def column_type(self, name: str) -> DataType:
        for column, dtype in self._footer.schema:
            if column == name:
                return dtype
        raise NoSuchColumnError(f"no column {name!r} in {self._key}")

    def _read_footer(self) -> FileFooter:
        if self._cache is not None:
            cached = self._cache.footer(
                self._bucket, self._key, metrics=self._store.metrics
            )
            if cached is not None:
                footer, logical_bytes = cached
                # Billing invariant: a footer served from cache is still
                # scanned bytes to the user.
                self._store.metrics.logical_bytes_scanned += logical_bytes
                return footer  # type: ignore[return-value]
        size = self._store.head(self._bucket, self._key)
        if size < 12:
            raise CorruptFileError(f"{self._key}: too small to be a Pixels file")
        tail = self._store.get(self._bucket, self._key, start=size - 8, length=8).data
        self._store.metrics.footer_get_requests += 1
        (footer_len,) = struct.unpack_from("<I", tail, 0)
        if tail[4:] != MAGIC:
            raise CorruptFileError(f"{self._key}: bad trailing magic")
        footer_start = size - 8 - footer_len
        if footer_start < len(MAGIC):
            raise CorruptFileError(f"{self._key}: footer length out of range")
        blob = self._store.get(
            self._bucket, self._key, start=footer_start, length=footer_len
        ).data
        self._store.metrics.footer_get_requests += 1
        footer = FileFooter.from_bytes(blob)
        logical_bytes = 8 + footer_len
        self._store.metrics.logical_bytes_scanned += logical_bytes
        if self._cache is not None:
            self._cache.put_footer(self._bucket, self._key, footer, logical_bytes)
        return footer

    def read(
        self,
        columns: list[str] | None = None,
        ranges: dict[str, tuple[object | None, object | None]] | None = None,
    ) -> dict[str, ColumnVector]:
        """Read projected columns from all row groups not pruned by ``ranges``.

        Args:
            columns: Column names to materialize; None means all.
            ranges: Optional zone-map predicate per column as (low, high)
                closed bounds (None = open).  Row groups whose stats prove
                no row can match are skipped without reading any chunk.

        Returns:
            Mapping of column name to a single concatenated ColumnVector.
            Returns empty vectors (length 0) if every group is pruned.
        """
        if columns is None:
            columns = [name for name, _ in self._footer.schema]
        pieces: dict[str, list[ColumnVector]] = {column: [] for column in columns}
        for group_vectors in self.iter_groups(columns=columns, ranges=ranges):
            for column, vector in group_vectors.items():
                pieces[column].append(vector)
        result: dict[str, ColumnVector] = {}
        for column in columns:
            vectors = pieces[column]
            if not vectors:
                dtype = self.column_type(column)
                result[column] = ColumnVector(
                    dtype, np.empty(0, dtype=dtype.numpy_dtype)
                )
                continue
            result[column] = ColumnVector.concat_all(vectors)
        return result

    def iter_groups(
        self,
        columns: list[str] | None = None,
        ranges: dict[str, tuple[object | None, object | None]] | None = None,
    ):
        """Yield each unpruned row group's projected columns, *lazily*.

        Chunks for a row group are fetched (and accounted as logical
        scanned bytes) only when the group is actually pulled — this is
        what lets a LIMIT-satisfied pipeline abandon the iterator and skip
        the GETs for every remaining row group.

        Yields:
            One ``{column: ColumnVector}`` mapping per surviving row group,
            in file order.
        """
        names = [name for name, _ in self._footer.schema]
        if columns is None:
            columns = names
        for column in columns:
            if column not in names:
                raise NoSuchColumnError(f"no column {column!r} in {self._key}")
        column_types = {column: self.column_type(column) for column in columns}
        for group in self._footer.row_groups:
            if ranges and self._pruned(group, ranges):
                continue
            blobs = self._fetch_group_chunks(
                [group.chunks[column] for column in columns]
            )
            yield {
                column: decode_chunk(
                    blobs[column],
                    column_types[column],
                    group.chunks[column].encoding,
                )
                for column in columns
            }

    def read_group(
        self, index: int, columns: list[str] | None = None
    ) -> dict[str, ColumnVector]:
        """Fetch and decode one row group by index (the morsel read path).

        Accounting is identical to the same group being pulled from
        :meth:`iter_groups`: every projected chunk's length becomes logical
        scanned bytes, pool lookups count hits/misses, and misses are
        coalesced into ranged GETs.
        """
        names = [name for name, _ in self._footer.schema]
        if columns is None:
            columns = names
        for column in columns:
            if column not in names:
                raise NoSuchColumnError(f"no column {column!r} in {self._key}")
        group = self._footer.row_groups[index]
        blobs = self._fetch_group_chunks([group.chunks[column] for column in columns])
        return {
            column: decode_chunk(
                blobs[column],
                self.column_type(column),
                group.chunks[column].encoding,
            )
            for column in columns
        }

    def count_pruned_groups(
        self, ranges: dict[str, tuple[object | None, object | None]]
    ) -> int:
        """Row groups of this file that ``ranges`` rules out entirely."""
        return sum(1 for group in self._footer.row_groups if self._pruned(group, ranges))

    def surviving_group_indexes(
        self,
        ranges: dict[str, tuple[object | None, object | None]] | None = None,
    ) -> list[int]:
        """Indexes of row groups ``ranges`` cannot rule out, in file order."""
        if not ranges:
            return list(range(len(self._footer.row_groups)))
        return [
            index
            for index, group in enumerate(self._footer.row_groups)
            if not self._pruned(group, ranges)
        ]

    def _fetch_group_chunks(self, chunks: list[ChunkMeta]) -> dict[str, bytes]:
        """Payloads for one row group's projected chunks, by column name.

        Every chunk's length is accounted as logical scanned bytes.  Pool
        hits are served from memory; the misses are sorted by offset and
        fetched with one ranged GET per coalesced run (runs merge across
        gaps of at most ``self._max_gap`` bytes — gap bytes cost bandwidth
        but are not logical).
        """
        blobs: dict[str, bytes] = {}
        missing: list[ChunkMeta] = []
        for chunk in chunks:
            self._store.metrics.logical_bytes_scanned += chunk.length
            if self._cache is not None:
                payload = self._cache.chunk(
                    self._bucket,
                    self._key,
                    chunk.offset,
                    chunk.length,
                    metrics=self._store.metrics,
                )
                if payload is not None:
                    blobs[chunk.column] = payload
                    continue
            missing.append(chunk)
        for run in _coalesce(missing, self._max_gap):
            start = run[0].offset
            length = run[-1].offset + run[-1].length - start
            payload = self._store.get(
                self._bucket, self._key, start=start, length=length
            ).data
            self._store.metrics.chunk_get_requests += 1
            for chunk in run:
                blob = payload[chunk.offset - start : chunk.offset - start + chunk.length]
                blobs[chunk.column] = blob
                if self._cache is not None:
                    self._cache.put_chunk(
                        self._bucket,
                        self._key,
                        chunk.offset,
                        blob,
                        metrics=self._store.metrics,
                    )
        return blobs

    @staticmethod
    def _pruned(
        group: RowGroupMeta,
        ranges: dict[str, tuple[object | None, object | None]],
    ) -> bool:
        for column, (low, high) in ranges.items():
            chunk = group.chunks.get(column)
            if chunk is None:
                continue
            if not chunk.stats.might_contain_range(low, high):
                return True
        return False


def _coalesce(chunks: list[ChunkMeta], max_gap: int) -> list[list[ChunkMeta]]:
    """Group chunk metas into runs servable by a single ranged GET.

    Chunks are sorted by offset; a chunk joins the current run when the
    byte gap to the run's end is at most ``max_gap``.  Projections that
    skip wide columns produce gaps larger than the budget and start a new
    run, bounding how many unneeded bytes one GET may transfer.
    """
    if not chunks:
        return []
    ordered = sorted(chunks, key=lambda chunk: chunk.offset)
    runs: list[list[ChunkMeta]] = [[ordered[0]]]
    end = ordered[0].offset + ordered[0].length
    for chunk in ordered[1:]:
        if chunk.offset - end <= max_gap:
            runs[-1].append(chunk)
        else:
            runs.append([chunk])
        end = max(end, chunk.offset + chunk.length)
    return runs
