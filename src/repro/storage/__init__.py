"""Storage substrate: object store, columnar format, and catalog.

PixelsDB stores base tables and CF-produced intermediate results in cloud
object storage (the paper uses AWS S3) in the Pixels columnar format.  This
package reproduces both layers:

* :mod:`repro.storage.object_store` — an S3-like object store with a
  calibrated latency/throughput/pricing model and per-request accounting
  (the pricing experiments bill $/TB *scanned*, so bytes-read accounting is
  load-bearing).
* :mod:`repro.storage.columnar` / :mod:`repro.storage.file_format` — a
  row-group / column-chunk columnar file format with per-chunk min/max
  statistics (zone maps), plain/RLE/dictionary encodings, projection and
  predicate push-down on read.
* :mod:`repro.storage.cache` — the buffer-pool layer fronting the object
  store (footer cache + column-chunk LRU with etag invalidation), the
  analogue of pixels-cache; cache hits cut latency and GET cost but never
  the billed bytes-scanned.
* :mod:`repro.storage.catalog` — the metadata service the Coordinator
  manages: schemas, tables, columns, and the mapping of tables to files.
"""

from repro.storage.cache import BufferPool, CacheConfig, CacheStats
from repro.storage.catalog import Catalog, ColumnMeta, SchemaMeta, TableMeta
from repro.storage.columnar import ColumnChunkStats, Encoding
from repro.storage.file_format import PixelsReader, PixelsWriter
from repro.storage.object_store import ObjectStore, StorageMetrics, StorageProfile
from repro.storage.table import TableData, TableReader, TableWriter
from repro.storage.types import ColumnVector, DataType

__all__ = [
    "BufferPool",
    "CacheConfig",
    "CacheStats",
    "Catalog",
    "ColumnChunkStats",
    "ColumnMeta",
    "ColumnVector",
    "DataType",
    "Encoding",
    "ObjectStore",
    "PixelsReader",
    "PixelsWriter",
    "SchemaMeta",
    "StorageMetrics",
    "StorageProfile",
    "TableData",
    "TableMeta",
    "TableReader",
    "TableWriter",
]
