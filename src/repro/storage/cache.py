"""Buffer-pool caching between the columnar reader and the object store.

Real PixelsDB fronts S3 with a dedicated caching layer (pixels-cache),
and Starling-style engines coalesce small range-GETs — both because the
object store's per-request first-byte latency and GET pricing dominate
cold columnar scans.  This module supplies the pool half of that design:

* a **footer cache** keyed by ``(bucket, key)`` and validated against the
  object's etag, so repeated opens of the same file skip the two footer
  range-GETs entirely;
* a **column-chunk LRU buffer pool** with a configurable byte budget,
  also etag-validated per entry, so warm scans serve chunk bytes from
  memory instead of the store.

Etag validation *is* the invalidation mechanism: every PUT bumps the
object's etag and DELETE removes it, so entries cached against a stale
etag are evicted lazily on the next lookup — a pool can never serve
bytes from before an overwrite.

**Billing invariant** (see :class:`~repro.storage.table.ScanResult`):
the user is billed for *logical* bytes scanned — the chunk and footer
bytes a query needed — whether those bytes came from the pool or the
store.  Cache hits reduce modelled latency and GET-request cost only;
``StorageMetrics.logical_bytes_scanned`` is identical with the pool on
or off, which keeps the paper's $/TB-scan prices (experiment C1)
byte-stable under caching.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.storage.object_store import ObjectStore, StorageMetrics

#: Merge adjacent range-GETs whose gap is at most this many bytes when no
#: explicit :class:`CacheConfig` governs the reader (see
#: ``CacheConfig.max_coalesce_gap_bytes``).
DEFAULT_COALESCE_GAP_BYTES = 64 * 1024


@dataclass(frozen=True)
class CacheConfig:
    """Tunables of the buffer pool and the read-path coalescing.

    Attributes:
        enabled: Master switch; a disabled config means callers should not
            construct a pool at all (``BufferPool.from_config`` returns
            None).
        footer_entries: Maximum number of cached file footers (LRU).
        chunk_budget_bytes: Byte budget of the column-chunk pool (LRU by
            payload size).
        max_coalesce_gap_bytes: Two chunk reads in the same row group are
            merged into one ranged GET when the byte gap between them is
            at most this.  Gap bytes are transferred (they cost bandwidth
            and show up in ``bytes_read``) but are never billed to the
            user — billing uses logical bytes.
    """

    enabled: bool = True
    footer_entries: int = 1024
    chunk_budget_bytes: int = 64 * 1024 * 1024
    max_coalesce_gap_bytes: int = DEFAULT_COALESCE_GAP_BYTES

    def __post_init__(self) -> None:
        if self.footer_entries < 0:
            raise ValueError("footer_entries must be >= 0")
        if self.chunk_budget_bytes < 0:
            raise ValueError("chunk_budget_bytes must be >= 0")
        if self.max_coalesce_gap_bytes < 0:
            raise ValueError("max_coalesce_gap_bytes must be >= 0")


@dataclass
class CacheStats:
    """Counters local to one pool (the store's metrics aggregate across
    every pool sharing the store)."""

    footer_hits: int = 0
    footer_misses: int = 0
    chunk_hits: int = 0
    chunk_misses: int = 0
    chunk_evictions: int = 0

    @property
    def hits(self) -> int:
        return self.footer_hits + self.chunk_hits

    @property
    def misses(self) -> int:
        return self.footer_misses + self.chunk_misses


class BufferPool:
    """Footer cache + column-chunk LRU pool over one :class:`ObjectStore`.

    A pool is deliberately *per worker tier*: the coordinator keeps one
    long-lived pool for the VM cluster (VMs are long-running, so their
    pool is warm across queries) and a fresh pool per CF invocation
    (functions cold-start with empty memory) — preserving the paper's
    elasticity asymmetry between the two tiers.
    """

    def __init__(self, store: ObjectStore, config: CacheConfig | None = None) -> None:
        self._store = store
        self.config = config if config is not None else CacheConfig()
        self.stats = CacheStats()
        # Morsel workers share one pool across threads; entry bookkeeping
        # (OrderedDict moves, byte budget) must stay consistent under that.
        self._lock = threading.Lock()
        # (bucket, key) -> (etag, footer object, logical footer bytes)
        self._footers: OrderedDict[tuple[str, str], tuple[int, object, int]] = (
            OrderedDict()
        )
        # (bucket, key, offset, length) -> (etag, payload)
        self._chunks: OrderedDict[
            tuple[str, str, int, int], tuple[int, bytes]
        ] = OrderedDict()
        self._chunk_bytes = 0

    @staticmethod
    def from_config(
        store: ObjectStore, config: CacheConfig | None
    ) -> "BufferPool | None":
        """A pool per ``config``, or None when caching is disabled."""
        if config is None or not config.enabled:
            return None
        return BufferPool(store, config)

    # -- introspection -------------------------------------------------------

    @property
    def cached_chunk_bytes(self) -> int:
        """Current occupancy of the chunk pool."""
        return self._chunk_bytes

    @property
    def cached_footers(self) -> int:
        return len(self._footers)

    @property
    def cached_chunks(self) -> int:
        return len(self._chunks)

    def clear(self) -> None:
        """Drop every entry (a cold restart of this worker tier)."""
        self._footers.clear()
        self._chunks.clear()
        self._chunk_bytes = 0

    # -- footer cache --------------------------------------------------------

    def footer(
        self, bucket: str, key: str, metrics: StorageMetrics | None = None
    ) -> tuple[object, int] | None:
        """``(footer, logical_footer_bytes)`` if cached and still current.

        Entries whose etag no longer matches the stored object (it was
        overwritten or deleted) are evicted and reported as misses.
        ``metrics`` redirects hit/miss accounting (morsel workers pass
        their private view metrics); it defaults to the store's.
        """
        metrics = metrics if metrics is not None else self._store.metrics
        current = self._store.etag(bucket, key)
        with self._lock:
            entry = self._footers.get((bucket, key))
            if entry is not None and current is not None and entry[0] == current:
                self._footers.move_to_end((bucket, key))
                self.stats.footer_hits += 1
                metrics.footer_cache_hits += 1
                return entry[1], entry[2]
            if entry is not None:
                del self._footers[(bucket, key)]
            self.stats.footer_misses += 1
            metrics.footer_cache_misses += 1
            return None

    def put_footer(
        self, bucket: str, key: str, footer: object, logical_bytes: int
    ) -> None:
        """Cache a parsed footer against the object's current etag."""
        if self.config.footer_entries == 0:
            return
        etag = self._store.etag(bucket, key)
        if etag is None:
            return
        with self._lock:
            self._footers[(bucket, key)] = (etag, footer, logical_bytes)
            self._footers.move_to_end((bucket, key))
            while len(self._footers) > self.config.footer_entries:
                self._footers.popitem(last=False)

    # -- column-chunk pool ---------------------------------------------------

    def chunk(
        self,
        bucket: str,
        key: str,
        offset: int,
        length: int,
        metrics: StorageMetrics | None = None,
    ) -> bytes | None:
        """The chunk's payload if pooled and still current, else None."""
        metrics = metrics if metrics is not None else self._store.metrics
        pool_key = (bucket, key, offset, length)
        current = self._store.etag(bucket, key)
        with self._lock:
            entry = self._chunks.get(pool_key)
            if entry is not None and current is not None and entry[0] == current:
                self._chunks.move_to_end(pool_key)
                self.stats.chunk_hits += 1
                metrics.chunk_cache_hits += 1
                return entry[1]
            if entry is not None:
                # Stale etag: an invalidation, counted as the miss below
                # rather than as a budget eviction.
                self._evict(pool_key, count=False)
            self.stats.chunk_misses += 1
            metrics.chunk_cache_misses += 1
            return None

    def put_chunk(
        self,
        bucket: str,
        key: str,
        offset: int,
        payload: bytes,
        metrics: StorageMetrics | None = None,
    ) -> None:
        """Pool a chunk's bytes, evicting LRU entries to stay in budget.

        A payload larger than the whole budget is not cached at all —
        admitting it would flush every other entry for a single chunk.
        """
        metrics = metrics if metrics is not None else self._store.metrics
        if len(payload) > self.config.chunk_budget_bytes:
            return
        etag = self._store.etag(bucket, key)
        if etag is None:
            return
        pool_key = (bucket, key, offset, len(payload))
        with self._lock:
            if pool_key in self._chunks:
                self._evict(pool_key, count=False)
            self._chunks[pool_key] = (etag, payload)
            self._chunk_bytes += len(payload)
            while self._chunk_bytes > self.config.chunk_budget_bytes and self._chunks:
                oldest = next(iter(self._chunks))
                self._evict(oldest, metrics=metrics)

    def _evict(
        self,
        pool_key: tuple[str, str, int, int],
        count: bool = True,
        metrics: StorageMetrics | None = None,
    ) -> None:
        _, payload = self._chunks.pop(pool_key)
        self._chunk_bytes -= len(payload)
        if count:
            metrics = metrics if metrics is not None else self._store.metrics
            self.stats.chunk_evictions += 1
            metrics.chunk_cache_evictions += 1
