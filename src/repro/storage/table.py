"""Table-level reading and writing over the columnar format.

A table is a set of Pixels files under one object-store prefix.
:class:`TableWriter` partitions rows into files and row groups;
:class:`TableReader` scans with projection and zone-map predicate push-down
and reports the bytes it actually read (the billing basis).

:class:`TableData` is the in-memory form — a dict of equal-length
:class:`ColumnVector` — used both here and throughout the query engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

import re

from repro.errors import NoSuchColumnError
from repro.storage.cache import BufferPool
from repro.storage.file_format import PixelsReader, PixelsWriter
from repro.storage.object_store import ObjectStore
from repro.storage.types import ColumnVector, DataType


def _natural_key(key: str) -> tuple:
    """Sort key treating digit runs numerically (part-2 before part-10)."""
    return tuple(
        int(part) if part.isdigit() else part for part in re.split(r"(\d+)", key)
    )


@dataclass
class TableData:
    """In-memory columnar table: ordered columns of equal length."""

    columns: dict[str, ColumnVector] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(vector) for vector in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged table: column lengths {lengths}")

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def schema(self) -> list[tuple[str, DataType]]:
        return [(name, vector.dtype) for name, vector in self.columns.items()]

    def column(self, name: str) -> ColumnVector:
        try:
            return self.columns[name]
        except KeyError:
            raise NoSuchColumnError(f"no column {name!r}") from None

    def select(self, names: list[str]) -> "TableData":
        """Project to ``names``, preserving the given order."""
        return TableData({name: self.column(name) for name in names})

    def filter(self, mask: np.ndarray) -> "TableData":
        return TableData(
            {name: vector.filter(mask) for name, vector in self.columns.items()}
        )

    def take(self, indices: np.ndarray) -> "TableData":
        return TableData(
            {name: vector.take(indices) for name, vector in self.columns.items()}
        )

    def slice(self, start: int, stop: int) -> "TableData":
        return TableData(
            {name: vector.slice(start, stop) for name, vector in self.columns.items()}
        )

    def concat(self, other: "TableData") -> "TableData":
        return TableData.concat_all([self, other])

    @staticmethod
    def concat_all(tables: "list[TableData]") -> "TableData":
        """Concatenate many tables in one pass (schemas must match).

        Each output column is built with a single allocation via
        :meth:`ColumnVector.concat_all`, so merging the pieces of a
        multi-file scan is linear in total rows.
        """
        if not tables:
            return TableData({})
        first = tables[0]
        for table in tables[1:]:
            if table.column_names != first.column_names:
                raise ValueError("cannot concat tables with different columns")
        if len(tables) == 1:
            return first
        return TableData(
            {
                name: ColumnVector.concat_all(
                    [table.columns[name] for table in tables]
                )
                for name in first.columns
            }
        )

    def rename(self, mapping: dict[str, str]) -> "TableData":
        """Return a copy with columns renamed per ``mapping``."""
        return TableData(
            {mapping.get(name, name): vector for name, vector in self.columns.items()}
        )

    def to_rows(self) -> list[tuple]:
        """Row-major view (None for NULLs) — for tests and result display."""
        values = [vector.to_values() for vector in self.columns.values()]
        return list(zip(*values)) if values else []

    def nbytes(self) -> int:
        return sum(vector.nbytes() for vector in self.columns.values())

    @staticmethod
    def from_rows(
        schema: list[tuple[str, DataType]], rows: list[tuple]
    ) -> "TableData":
        """Build from row-major data (None entries become NULLs)."""
        columns: dict[str, ColumnVector] = {}
        for index, (name, dtype) in enumerate(schema):
            columns[name] = ColumnVector.from_values(
                dtype, [row[index] for row in rows]
            )
        return TableData(columns)

    @staticmethod
    def empty(schema: list[tuple[str, DataType]]) -> "TableData":
        return TableData(
            {
                name: ColumnVector(dtype, np.empty(0, dtype=dtype.numpy_dtype))
                for name, dtype in schema
            }
        )


class TableWriter:
    """Writes a :class:`TableData` to object storage as Pixels files.

    Args:
        store: Destination object store.
        bucket: Destination bucket (must exist).
        prefix: Key prefix; files are named ``{prefix}/part-{n}.pxl``.
        rows_per_file: Split point between files (a table bigger than this
            becomes multiple files, which is what lets scans parallelize
            across workers).
        rows_per_group: Row-group size within a file (the zone-map/skipping
            granularity).
    """

    def __init__(
        self,
        store: ObjectStore,
        bucket: str,
        prefix: str,
        rows_per_file: int = 65536,
        rows_per_group: int = 8192,
    ) -> None:
        if rows_per_file <= 0 or rows_per_group <= 0:
            raise ValueError("rows_per_file and rows_per_group must be positive")
        self._store = store
        self._bucket = bucket
        self._prefix = prefix.rstrip("/")
        self._rows_per_file = rows_per_file
        self._rows_per_group = rows_per_group

    def write(self, table: TableData) -> list[str]:
        """Write ``table``; returns the keys of the files produced."""
        schema = table.schema()
        if not schema:
            raise ValueError("cannot write a table with no columns")
        keys: list[str] = []
        total = table.num_rows
        file_index = 0
        start = 0
        while start < total or (total == 0 and file_index == 0):
            stop = min(start + self._rows_per_file, total)
            key = f"{self._prefix}/part-{file_index}.pxl"
            writer = PixelsWriter(self._store, self._bucket, key, schema)
            group_start = start
            while group_start < stop:
                group_stop = min(group_start + self._rows_per_group, stop)
                piece = table.slice(group_start, group_stop)
                writer.write_row_group(piece.columns)
                group_start = group_stop
            if total == 0:
                writer.write_row_group(TableData.empty(schema).columns)
            writer.close()
            keys.append(key)
            file_index += 1
            start = stop
            if total == 0:
                break
        return keys


@dataclass(frozen=True)
class ScanResult:
    """What a table scan produced and what it cost.

    ``bytes_scanned`` is the *logical* byte count (footers + needed column
    chunks) — the $/TB-scan billing basis.  It is identical whether the
    bytes came from the object store or a buffer pool; caching and
    range-GET coalescing only reduce ``latency_s`` and ``get_requests``.
    """

    data: TableData
    bytes_scanned: int
    latency_s: float
    row_groups_skipped: int
    get_requests: int = 0
    footer_gets: int = 0  # request-class split of get_requests
    chunk_gets: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0


class TableReader:
    """Scans a table prefix with projection and predicate push-down.

    Args:
        store: The backing object store.
        bucket: Bucket holding the table's files.
        prefix: Key prefix of the table.
        cache: Optional buffer pool (footers + column chunks).  Pass the
            worker tier's shared pool for warm scans; None reads every
            byte from the store.
    """

    def __init__(
        self,
        store: ObjectStore,
        bucket: str,
        prefix: str,
        cache: "BufferPool | None" = None,
    ) -> None:
        self._store = store
        self._bucket = bucket
        self._prefix = prefix.rstrip("/")
        self._cache = cache

    def file_keys(self) -> list[str]:
        """All Pixels files belonging to this table, in natural part order.

        Plain lexicographic order would interleave ``part-10`` before
        ``part-2`` once a table exceeds ten files, making scan order
        diverge from write order; the numeric-aware sort keeps multi-file
        scans deterministic and write-ordered.
        """
        keys = [
            key
            for key in self._store.list_keys(self._bucket, self._prefix + "/")
            if key.endswith(".pxl")
        ]
        return sorted(keys, key=_natural_key)

    def scan(
        self,
        columns: list[str] | None = None,
        ranges: dict[str, tuple[object | None, object | None]] | None = None,
        keys: list[str] | None = None,
    ) -> ScanResult:
        """Scan (a subset of) the table's files.

        Args:
            columns: Projection; None reads every column.
            ranges: Zone-map ranges per column for row-group skipping.
            keys: Restrict to these file keys (how Turbo splits a scan
                across workers); None scans all files.

        Returns:
            A :class:`ScanResult` whose ``bytes_scanned`` and ``latency_s``
            are deltas of the object-store accounting for exactly this scan.
        """
        before = self._store.metrics.snapshot()
        file_keys = keys if keys is not None else self.file_keys()
        pieces: list[TableData] = []
        skipped = 0
        for key in file_keys:
            reader = PixelsReader(self._store, self._bucket, key, cache=self._cache)
            if ranges:
                skipped += sum(
                    1
                    for group in reader.footer.row_groups
                    if PixelsReader._pruned(group, ranges)
                )
            vectors = reader.read(columns=columns, ranges=ranges)
            pieces.append(TableData(vectors))
        merged = TableData.concat_all(pieces)
        delta = self._store.metrics.delta(before)
        return ScanResult(
            data=merged,
            bytes_scanned=delta.logical_bytes_scanned,
            latency_s=delta.read_time_s,
            row_groups_skipped=max(skipped, 0),
            get_requests=delta.get_requests,
            footer_gets=delta.footer_get_requests,
            chunk_gets=delta.chunk_get_requests,
            cache_hits=delta.footer_cache_hits + delta.chunk_cache_hits,
            cache_misses=delta.footer_cache_misses + delta.chunk_cache_misses,
            cache_evictions=delta.chunk_cache_evictions,
        )
