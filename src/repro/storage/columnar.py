"""Column-chunk encodings and statistics (the Pixels format's core).

A column chunk is the unit of storage: one column within one row group.
Chunks carry zone-map statistics (min/max/null-count) that the reader uses
to skip row groups whose value range cannot satisfy a predicate — the
mechanism that makes bytes-*scanned* (what the paper bills on) smaller than
bytes stored.

Three encodings are implemented, mirroring the Pixels format's essentials:

* ``PLAIN`` — raw little-endian values; VARCHAR as int32 offsets + UTF-8.
* ``RLE`` — run-length (run, value) pairs for integer-like columns.
* ``DICT`` — dictionary codes for low-cardinality VARCHAR columns.

Encoding selection is automatic per chunk (:func:`choose_encoding`) and is
recorded in the file footer so readers round-trip losslessly.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import CorruptFileError
from repro.storage.types import ColumnVector, DataType


class Encoding(enum.Enum):
    """Physical encodings a column chunk may use."""

    PLAIN = "plain"
    RLE = "rle"
    DICT = "dict"


@dataclass(frozen=True)
class ColumnChunkStats:
    """Zone-map statistics for one column chunk.

    ``min_value``/``max_value`` are None when every row is NULL or the type
    is not orderable; they are Python scalars (int/float/str) otherwise.
    """

    num_rows: int
    null_count: int
    min_value: object | None
    max_value: object | None

    def might_contain_range(self, low: object | None, high: object | None) -> bool:
        """Whether rows in [low, high] may exist in this chunk.

        ``None`` bounds are open.  A True result means "cannot rule out";
        False is a proof the chunk holds no matching row, so it may be
        skipped without reading it.
        """
        if self.min_value is None or self.max_value is None:
            return self.null_count < self.num_rows and low is None and high is None
        if low is not None and _less_than(self.max_value, low):
            return False
        if high is not None and _less_than(high, self.min_value):
            return False
        return True


def _less_than(a: object, b: object) -> bool:
    return a < b  # type: ignore[operator]


def compute_stats(vector: ColumnVector) -> ColumnChunkStats:
    """Compute zone-map statistics for ``vector``."""
    num_rows = len(vector)
    null_count = vector.null_count
    if num_rows == null_count or num_rows == 0:
        return ColumnChunkStats(num_rows, null_count, None, None)
    if vector.nulls is not None:
        valid = vector.data[~vector.nulls]
    else:
        valid = vector.data
    if vector.dtype is DataType.BOOLEAN:
        return ColumnChunkStats(num_rows, null_count, None, None)
    if vector.dtype is DataType.VARCHAR:
        as_str = [str(value) for value in valid]
        return ColumnChunkStats(num_rows, null_count, min(as_str), max(as_str))
    min_value = valid.min()
    max_value = valid.max()
    if vector.dtype is DataType.DOUBLE:
        return ColumnChunkStats(num_rows, null_count, float(min_value), float(max_value))
    return ColumnChunkStats(num_rows, null_count, int(min_value), int(max_value))


def choose_encoding(vector: ColumnVector) -> Encoding:
    """Pick the cheapest encoding for ``vector`` with simple heuristics.

    Integer-like columns whose average run length exceeds 4 use RLE;
    VARCHAR columns with < 50 % distinct values use DICT; everything else
    is PLAIN.  (The thresholds only affect size, never correctness — the
    round-trip property tests exercise all three paths explicitly.)
    """
    if len(vector) == 0:
        return Encoding.PLAIN
    if vector.dtype in (DataType.INT, DataType.BIGINT, DataType.DATE):
        data = vector.data
        if len(data) >= 8:
            changes = int(np.count_nonzero(np.diff(data))) + 1
            if len(data) / changes > 4.0:
                return Encoding.RLE
        return Encoding.PLAIN
    if vector.dtype is DataType.VARCHAR:
        distinct = len(set(vector.data.tolist()))
        if distinct <= max(1, len(vector) // 2):
            return Encoding.DICT
        return Encoding.PLAIN
    return Encoding.PLAIN


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def encode_chunk(vector: ColumnVector, encoding: Encoding) -> bytes:
    """Serialize ``vector`` with ``encoding``; the null mask travels inline."""
    null_blob = _encode_nulls(vector)
    if encoding is Encoding.PLAIN:
        payload = _encode_plain(vector)
    elif encoding is Encoding.RLE:
        payload = _encode_rle(vector)
    elif encoding is Encoding.DICT:
        payload = _encode_dict(vector)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown encoding {encoding}")
    header = struct.pack("<II", len(vector), len(null_blob))
    return header + null_blob + payload


def decode_chunk(blob: bytes, dtype: DataType, encoding: Encoding) -> ColumnVector:
    """Inverse of :func:`encode_chunk`."""
    if len(blob) < 8:
        raise CorruptFileError("column chunk too short for header")
    num_rows, null_len = struct.unpack_from("<II", blob, 0)
    offset = 8
    nulls = _decode_nulls(blob[offset : offset + null_len], num_rows)
    offset += null_len
    payload = blob[offset:]
    if encoding is Encoding.PLAIN:
        data = _decode_plain(payload, dtype, num_rows)
    elif encoding is Encoding.RLE:
        data = _decode_rle(payload, dtype, num_rows)
    elif encoding is Encoding.DICT:
        data = _decode_dict(payload, num_rows)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown encoding {encoding}")
    return ColumnVector(dtype, data, nulls)


def _encode_nulls(vector: ColumnVector) -> bytes:
    if vector.nulls is None or not vector.nulls.any():
        return b""
    return np.packbits(vector.nulls).tobytes()


def _decode_nulls(blob: bytes, num_rows: int) -> np.ndarray | None:
    if not blob:
        return None
    bits = np.unpackbits(np.frombuffer(blob, dtype=np.uint8), count=num_rows)
    return bits.astype(bool)


def _encode_strings(values: list[str]) -> bytes:
    # Encode each value exactly once; the length vector reuses the encoded
    # bytes instead of re-encoding (this is the hot path of VARCHAR writes).
    encoded = [value.encode("utf-8") for value in values]
    lengths = np.fromiter(
        (len(blob) for blob in encoded), dtype=np.int32, count=len(encoded)
    )
    return struct.pack("<I", len(values)) + lengths.tobytes() + b"".join(encoded)


def _decode_strings(blob: bytes) -> list[str]:
    if len(blob) < 4:
        raise CorruptFileError("string block too short")
    (count,) = struct.unpack_from("<I", blob, 0)
    lengths = np.frombuffer(blob, dtype=np.int32, count=count, offset=4)
    # Vectorized offset arithmetic (cumsum) instead of a running counter
    # with per-item int() casts; slicing stays on byte boundaries so
    # multi-byte UTF-8 values decode exactly as written.
    ends = (np.cumsum(lengths, dtype=np.int64) + (4 + 4 * count)).tolist()
    starts = [4 + 4 * count] + ends[:-1]
    return [blob[start:end].decode("utf-8") for start, end in zip(starts, ends)]


def _encode_plain(vector: ColumnVector) -> bytes:
    if vector.dtype is DataType.VARCHAR:
        return _encode_strings([str(value) for value in vector.data])
    if vector.dtype is DataType.BOOLEAN:
        return vector.data.astype(np.uint8).tobytes()
    return np.ascontiguousarray(vector.data).tobytes()


def _decode_plain(blob: bytes, dtype: DataType, num_rows: int) -> np.ndarray:
    if dtype is DataType.VARCHAR:
        return np.array(_decode_strings(blob), dtype=object)
    if dtype is DataType.BOOLEAN:
        return np.frombuffer(blob, dtype=np.uint8, count=num_rows).astype(bool)
    return np.frombuffer(blob, dtype=dtype.numpy_dtype, count=num_rows).copy()


def _encode_rle(vector: ColumnVector) -> bytes:
    data = vector.data
    if len(data) == 0:
        return struct.pack("<I", 0)
    boundaries = np.flatnonzero(np.diff(data)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(data)]])
    runs = (ends - starts).astype(np.int32)
    values = data[starts].astype(np.int64)
    return struct.pack("<I", len(runs)) + runs.tobytes() + values.tobytes()


def _decode_rle(blob: bytes, dtype: DataType, num_rows: int) -> np.ndarray:
    (num_runs,) = struct.unpack_from("<I", blob, 0)
    runs = np.frombuffer(blob, dtype=np.int32, count=num_runs, offset=4)
    values = np.frombuffer(
        blob, dtype=np.int64, count=num_runs, offset=4 + 4 * num_runs
    )
    data = np.repeat(values, runs).astype(dtype.numpy_dtype)
    if len(data) != num_rows:
        raise CorruptFileError(
            f"RLE chunk decoded {len(data)} rows, expected {num_rows}"
        )
    return data


def _encode_dict(vector: ColumnVector) -> bytes:
    # Vectorized dictionary build.  The on-disk dictionary order is
    # first-appearance (what the old setdefault loop produced), so sorted
    # np.unique output is remapped through argsort(first_index) — the blob
    # stays byte-identical to the loop encoding.
    values = np.array([str(value) for value in vector.data], dtype=object)
    uniques, first, inverse = np.unique(
        values, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    remap = np.empty(len(uniques), dtype=np.int32)
    remap[order] = np.arange(len(uniques), dtype=np.int32)
    codes = remap[inverse.reshape(-1)]
    dict_blob = _encode_strings(uniques[order].tolist())
    return struct.pack("<I", len(dict_blob)) + dict_blob + codes.tobytes()


def _decode_dict(blob: bytes, num_rows: int) -> np.ndarray:
    (dict_len,) = struct.unpack_from("<I", blob, 0)
    dictionary = _decode_strings(blob[4 : 4 + dict_len])
    codes = np.frombuffer(blob, dtype=np.int32, count=num_rows, offset=4 + dict_len)
    lookup = np.array(dictionary, dtype=object)
    return lookup[codes]
