"""The metadata catalog managed by the Coordinator.

The catalog maps database schemas → tables → columns and records, per
table, where its files live (bucket + prefix) and its statistics (row
count, size).  Pixels-Rover reads the catalog to render the schema browser;
the binder resolves SQL names against it; the planner uses its statistics
for cost decisions; and the NL2SQL service serializes its elements into the
schema-pruning stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    DuplicateObjectError,
    NoSuchColumnError,
    NoSuchSchemaError,
    NoSuchTableError,
)
from repro.storage.types import DataType


@dataclass
class ColumnMeta:
    """One column: name, logical type, and an optional human comment.

    ``comment`` doubles as NL2SQL vocabulary — the schema-pruning stage
    matches question tokens against names *and* comments, which is how
    natural phrasings like "total price" can reach ``o_totalprice``.
    """

    name: str
    dtype: DataType
    comment: str = ""


@dataclass
class ForeignKey:
    """A foreign-key edge used for NL2SQL join-path inference."""

    column: str
    ref_table: str
    ref_column: str


@dataclass
class TableMeta:
    """One table: columns, storage location, statistics, FK edges."""

    name: str
    columns: list[ColumnMeta] = field(default_factory=list)
    bucket: str = ""
    prefix: str = ""
    row_count: int = 0
    size_bytes: int = 0
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    comment: str = ""

    def column(self, name: str) -> ColumnMeta:
        for column in self.columns:
            if column.name == name:
                return column
        raise NoSuchColumnError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(column.name == name for column in self.columns)

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]


@dataclass
class SchemaMeta:
    """One database schema: a named collection of tables."""

    name: str
    tables: dict[str, TableMeta] = field(default_factory=dict)
    comment: str = ""

    def table(self, name: str) -> TableMeta:
        try:
            return self.tables[name]
        except KeyError:
            raise NoSuchTableError(
                f"no table {name!r} in schema {self.name!r}"
            ) from None

    @property
    def table_names(self) -> list[str]:
        return list(self.tables)


class Catalog:
    """Root of the metadata hierarchy.

    All mutation goes through ``create_*`` methods that enforce uniqueness;
    lookups raise the dedicated ``NoSuch*`` errors so API layers can map
    them to user-facing messages.
    """

    def __init__(self) -> None:
        self._schemas: dict[str, SchemaMeta] = {}

    # -- schemas -------------------------------------------------------------

    def create_schema(self, name: str, comment: str = "") -> SchemaMeta:
        if name in self._schemas:
            raise DuplicateObjectError(f"schema {name!r} already exists")
        schema = SchemaMeta(name=name, comment=comment)
        self._schemas[name] = schema
        return schema

    def drop_schema(self, name: str) -> None:
        if name not in self._schemas:
            raise NoSuchSchemaError(f"no schema {name!r}")
        del self._schemas[name]

    def schema(self, name: str) -> SchemaMeta:
        try:
            return self._schemas[name]
        except KeyError:
            raise NoSuchSchemaError(f"no schema {name!r}") from None

    def has_schema(self, name: str) -> bool:
        return name in self._schemas

    @property
    def schema_names(self) -> list[str]:
        return list(self._schemas)

    # -- tables --------------------------------------------------------------

    def create_table(
        self,
        schema_name: str,
        table_name: str,
        columns: list[ColumnMeta],
        bucket: str = "",
        prefix: str = "",
        comment: str = "",
    ) -> TableMeta:
        schema = self.schema(schema_name)
        if table_name in schema.tables:
            raise DuplicateObjectError(
                f"table {table_name!r} already exists in schema {schema_name!r}"
            )
        if not columns:
            raise ValueError("a table needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise DuplicateObjectError(f"duplicate column names in {table_name!r}")
        table = TableMeta(
            name=table_name,
            columns=list(columns),
            bucket=bucket,
            prefix=prefix,
            comment=comment,
        )
        schema.tables[table_name] = table
        return table

    def drop_table(self, schema_name: str, table_name: str) -> None:
        schema = self.schema(schema_name)
        if table_name not in schema.tables:
            raise NoSuchTableError(f"no table {table_name!r} in {schema_name!r}")
        del schema.tables[table_name]

    def table(self, schema_name: str, table_name: str) -> TableMeta:
        return self.schema(schema_name).table(table_name)

    def add_foreign_key(
        self,
        schema_name: str,
        table_name: str,
        column: str,
        ref_table: str,
        ref_column: str,
    ) -> None:
        """Register an FK edge (validated against the catalog)."""
        table = self.table(schema_name, table_name)
        table.column(column)  # raises if missing
        referenced = self.table(schema_name, ref_table)
        referenced.column(ref_column)
        table.foreign_keys.append(ForeignKey(column, ref_table, ref_column))

    def update_statistics(
        self, schema_name: str, table_name: str, row_count: int, size_bytes: int
    ) -> None:
        """Record post-load statistics (the Coordinator does this on ingest)."""
        table = self.table(schema_name, table_name)
        table.row_count = row_count
        table.size_bytes = size_bytes

    # -- persistence ----------------------------------------------------------

    def to_json(self) -> dict:
        """Serialize the whole catalog (the Coordinator's durable state)."""
        return {
            "schemas": [
                {
                    "name": schema.name,
                    "comment": schema.comment,
                    "tables": [
                        {
                            "name": table.name,
                            "comment": table.comment,
                            "bucket": table.bucket,
                            "prefix": table.prefix,
                            "row_count": table.row_count,
                            "size_bytes": table.size_bytes,
                            "columns": [
                                {
                                    "name": column.name,
                                    "type": column.dtype.value,
                                    "comment": column.comment,
                                }
                                for column in table.columns
                            ],
                            "foreign_keys": [
                                {
                                    "column": fk.column,
                                    "ref_table": fk.ref_table,
                                    "ref_column": fk.ref_column,
                                }
                                for fk in table.foreign_keys
                            ],
                        }
                        for table in schema.tables.values()
                    ],
                }
                for schema in self._schemas.values()
            ]
        }

    @staticmethod
    def from_json(payload: dict) -> "Catalog":
        """Inverse of :meth:`to_json`."""
        catalog = Catalog()
        for schema_payload in payload["schemas"]:
            catalog.create_schema(
                schema_payload["name"], comment=schema_payload.get("comment", "")
            )
            for table_payload in schema_payload["tables"]:
                catalog.create_table(
                    schema_payload["name"],
                    table_payload["name"],
                    [
                        ColumnMeta(
                            column["name"],
                            DataType(column["type"]),
                            column.get("comment", ""),
                        )
                        for column in table_payload["columns"]
                    ],
                    bucket=table_payload.get("bucket", ""),
                    prefix=table_payload.get("prefix", ""),
                    comment=table_payload.get("comment", ""),
                )
                catalog.update_statistics(
                    schema_payload["name"],
                    table_payload["name"],
                    row_count=table_payload.get("row_count", 0),
                    size_bytes=table_payload.get("size_bytes", 0),
                )
        # FK edges after all tables exist, so forward references resolve.
        for schema_payload in payload["schemas"]:
            for table_payload in schema_payload["tables"]:
                for fk in table_payload.get("foreign_keys", []):
                    catalog.add_foreign_key(
                        schema_payload["name"],
                        table_payload["name"],
                        fk["column"],
                        fk["ref_table"],
                        fk["ref_column"],
                    )
        return catalog

    def save(self, store, bucket: str, key: str = "_catalog.json") -> None:
        """Persist the catalog into the object store itself — the same
        durability story the real coordinator uses for metadata."""
        import json

        store.create_bucket(bucket)
        store.put(bucket, key, json.dumps(self.to_json()).encode("utf-8"))

    @staticmethod
    def load(store, bucket: str, key: str = "_catalog.json") -> "Catalog":
        import json

        blob = store.get(bucket, key).data
        return Catalog.from_json(json.loads(blob.decode("utf-8")))

    # -- serialization for the NL2SQL protocol --------------------------------

    def describe_schema(self, schema_name: str) -> dict:
        """The JSON shape Pixels-Rover sends to the text-to-SQL service.

        Mirrors §2(3): table and column names (plus types/comments) of the
        user's selected database.
        """
        schema = self.schema(schema_name)
        return {
            "schema": schema.name,
            "tables": [
                {
                    "name": table.name,
                    "comment": table.comment,
                    "columns": [
                        {
                            "name": column.name,
                            "type": column.dtype.value,
                            "comment": column.comment,
                        }
                        for column in table.columns
                    ],
                    "foreign_keys": [
                        {
                            "column": fk.column,
                            "ref_table": fk.ref_table,
                            "ref_column": fk.ref_column,
                        }
                        for fk in table.foreign_keys
                    ],
                }
                for table in schema.tables.values()
            ],
        }
