"""An S3-like object store with a calibrated cost model.

The store is in-memory (a dict of buckets), but every request is *accounted*:
bytes transferred, request counts, and modelled wall-clock latency.  The
Turbo cost model converts bytes-scanned into the paper's $/TB-scan prices,
and the simulator charges the modelled latency as simulated time, so the
latency/throughput parameters below are what make VM and CF execution times
realistic.

Defaults are calibrated to public S3 figures: ~30 ms time-to-first-byte per
GET and ~90 MB/s single-stream throughput, $0.0004 per 1000 GETs, $0.005 per
1000 PUTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NoSuchBucketError, NoSuchObjectError


@dataclass(frozen=True)
class StorageProfile:
    """Latency/throughput/price parameters of the object store.

    Attributes:
        first_byte_latency_s: Fixed latency added to every GET.
        read_bandwidth_bytes_per_s: Single-request streaming throughput.
        write_bandwidth_bytes_per_s: Single-request upload throughput.
        get_price_per_1000: Dollars per 1000 GET requests.
        put_price_per_1000: Dollars per 1000 PUT requests.
    """

    first_byte_latency_s: float = 0.030
    read_bandwidth_bytes_per_s: float = 90e6
    write_bandwidth_bytes_per_s: float = 60e6
    get_price_per_1000: float = 0.0004
    put_price_per_1000: float = 0.005

    def get_latency(self, num_bytes: int) -> float:
        """Modelled wall-clock seconds for a GET of ``num_bytes``."""
        return self.first_byte_latency_s + num_bytes / self.read_bandwidth_bytes_per_s

    def put_latency(self, num_bytes: int) -> float:
        """Modelled wall-clock seconds for a PUT of ``num_bytes``."""
        return self.first_byte_latency_s + num_bytes / self.write_bandwidth_bytes_per_s


@dataclass
class StorageMetrics:
    """Accumulated request accounting, the basis of $/TB-scan billing.

    ``bytes_read`` counts *physical* payload bytes transferred (coalesced
    range-GETs include the gap bytes they bridge); ``logical_bytes_scanned``
    counts the footer and chunk bytes readers actually needed, whether they
    came from the store or a :class:`~repro.storage.cache.BufferPool`.  The
    logical counter is the billing basis: it is byte-identical with caching
    on or off, so cache hits never change a user's $/TB-scan bill — only
    latency and GET-request cost drop.
    """

    get_requests: int = 0
    # Request-class split of get_requests, stamped by PixelsReader: footer
    # reads vs (coalesced) column-chunk reads.  GETs issued outside the
    # reader (raw store.get calls) belong to neither class.
    footer_get_requests: int = 0
    chunk_get_requests: int = 0
    put_requests: int = 0
    delete_requests: int = 0
    list_requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time_s: float = 0.0
    write_time_s: float = 0.0
    logical_bytes_scanned: int = 0
    footer_cache_hits: int = 0
    footer_cache_misses: int = 0
    chunk_cache_hits: int = 0
    chunk_cache_misses: int = 0
    chunk_cache_evictions: int = 0

    def request_cost(self, profile: StorageProfile) -> float:
        """Dollar cost of the requests accumulated so far."""
        return (
            self.get_requests * profile.get_price_per_1000
            + self.put_requests * profile.put_price_per_1000
        ) / 1000.0

    def snapshot(self) -> "StorageMetrics":
        """A copy frozen at the current counters (for before/after deltas)."""
        return StorageMetrics(**vars(self))

    def delta(self, earlier: "StorageMetrics") -> "StorageMetrics":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return StorageMetrics(
            **{key: getattr(self, key) - getattr(earlier, key) for key in vars(self)}
        )

    def merge(self, other: "StorageMetrics") -> None:
        """Add ``other``'s counters into this object."""
        for key in vars(self):
            setattr(self, key, getattr(self, key) + getattr(other, key))


@dataclass
class GetResult:
    """Payload plus the modelled latency of a GET."""

    data: bytes
    latency_s: float


@dataclass
class _Object:
    data: bytes
    etag: int


@dataclass
class ObjectStore:
    """In-memory, accounted object store.

    Keys follow S3 semantics: flat namespace per bucket, '/'-separated
    prefixes are a listing convention only.  Range reads are supported
    because the columnar reader fetches footers and individual column
    chunks with byte ranges — exactly the access pattern that makes
    bytes-*scanned* differ from file size.
    """

    profile: StorageProfile = field(default_factory=StorageProfile)

    def __post_init__(self) -> None:
        self._buckets: dict[str, dict[str, _Object]] = {}
        self._etag_counter = 0
        self.metrics = StorageMetrics()

    # -- bucket management -------------------------------------------------

    def create_bucket(self, bucket: str) -> None:
        """Create ``bucket``; creating an existing bucket is a no-op (S3-like)."""
        self._buckets.setdefault(bucket, {})

    def bucket_exists(self, bucket: str) -> bool:
        return bucket in self._buckets

    def _bucket(self, bucket: str) -> dict[str, _Object]:
        try:
            return self._buckets[bucket]
        except KeyError:
            raise NoSuchBucketError(f"no such bucket: {bucket!r}") from None

    # -- object operations --------------------------------------------------

    def put(self, bucket: str, key: str, data: bytes) -> float:
        """Store ``data`` at ``bucket/key``; returns modelled latency."""
        self._etag_counter += 1
        self._bucket(bucket)[key] = _Object(bytes(data), self._etag_counter)
        latency = self.profile.put_latency(len(data))
        self.metrics.put_requests += 1
        self.metrics.bytes_written += len(data)
        self.metrics.write_time_s += latency
        return latency

    def read_range(
        self, bucket: str, key: str, start: int = 0, length: int | None = None
    ) -> bytes:
        """Raw payload of a (range) read, with *no* request accounting.

        ``get`` layers the accounting on top; :class:`StoreView` layers it
        into a private metrics object instead, so parallel morsel workers
        can account in isolation and merge deterministically afterwards.
        """
        store = self._bucket(bucket)
        if key not in store:
            raise NoSuchObjectError(f"no such object: {bucket}/{key}")
        blob = store[key].data
        end = len(blob) if length is None else min(len(blob), start + length)
        return blob[start:end]

    def get(
        self, bucket: str, key: str, start: int = 0, length: int | None = None
    ) -> GetResult:
        """Fetch ``bucket/key`` (optionally a byte range)."""
        payload = self.read_range(bucket, key, start, length)
        latency = self.profile.get_latency(len(payload))
        self.metrics.get_requests += 1
        self.metrics.bytes_read += len(payload)
        self.metrics.read_time_s += latency
        return GetResult(payload, latency)

    def head(self, bucket: str, key: str) -> int:
        """Size in bytes of ``bucket/key`` (raises if missing)."""
        store = self._bucket(bucket)
        if key not in store:
            raise NoSuchObjectError(f"no such object: {bucket}/{key}")
        return len(store[key].data)

    def etag(self, bucket: str, key: str) -> int | None:
        """Current etag of ``bucket/key``, or None when it does not exist.

        Every PUT assigns a fresh etag, so an etag comparison detects
        overwrites — this is what buffer-pool entries validate against.
        Metadata-only, like a conditional-GET precondition: not billed as
        a request.
        """
        store = self._buckets.get(bucket)
        if store is None or key not in store:
            return None
        return store[key].etag

    def exists(self, bucket: str, key: str) -> bool:
        return self.bucket_exists(bucket) and key in self._buckets[bucket]

    def delete(self, bucket: str, key: str) -> None:
        """Delete ``bucket/key``; deleting a missing key is a no-op (S3-like)."""
        self._bucket(bucket).pop(key, None)
        self.metrics.delete_requests += 1

    def list_keys(self, bucket: str, prefix: str = "") -> list[str]:
        """All keys in ``bucket`` starting with ``prefix``, sorted."""
        self.metrics.list_requests += 1
        return sorted(key for key in self._bucket(bucket) if key.startswith(prefix))

    def total_bytes(self, bucket: str, prefix: str = "") -> int:
        """Total stored size under ``prefix`` (no request accounting)."""
        store = self._bucket(bucket)
        return sum(
            len(obj.data) for key, obj in store.items() if key.startswith(prefix)
        )


class StoreView:
    """A read-only handle on an :class:`ObjectStore` with private metrics.

    Morsel workers read through one fresh view each: the view shares the
    store's data and latency model but accounts every request into its own
    :class:`StorageMetrics`, so concurrent workers never race on the shared
    counters.  After the barrier, the driver merges each view's metrics into
    the real store in morsel order — the global counters end up identical to
    a sequential run, and per-morsel deltas are simply ``view.metrics``.

    Only the read-side surface a :class:`~repro.storage.file_format.PixelsReader`
    touches is exposed (get/head/etag/exists/profile).
    """

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self.metrics = StorageMetrics()

    @property
    def profile(self) -> StorageProfile:
        return self._store.profile

    def get(
        self, bucket: str, key: str, start: int = 0, length: int | None = None
    ) -> GetResult:
        payload = self._store.read_range(bucket, key, start, length)
        latency = self._store.profile.get_latency(len(payload))
        self.metrics.get_requests += 1
        self.metrics.bytes_read += len(payload)
        self.metrics.read_time_s += latency
        return GetResult(payload, latency)

    def head(self, bucket: str, key: str) -> int:
        return self._store.head(bucket, key)

    def etag(self, bucket: str, key: str) -> int | None:
        return self._store.etag(bucket, key)

    def exists(self, bucket: str, key: str) -> bool:
        return self._store.exists(bucket, key)
