"""Column data types and the in-memory column vector.

The engine is vectorized: every operator consumes and produces
:class:`ColumnVector` objects (a numpy array plus an optional null mask).
``DataType`` is the logical type system shared by the catalog, the SQL
binder, and the columnar file format.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class DataType(enum.Enum):
    """Logical column types supported by the reproduction.

    The set matches what the TPC-H-style workloads need; DECIMAL is carried
    as float64 (sufficient for the scheduling/pricing experiments, which do
    not depend on exact decimal arithmetic).
    """

    BOOLEAN = "boolean"
    INT = "int"
    BIGINT = "bigint"
    DOUBLE = "double"
    VARCHAR = "varchar"
    DATE = "date"  # days since 1970-01-01, stored as int32

    @property
    def numpy_dtype(self) -> np.dtype:
        """The physical numpy dtype backing this logical type."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT, DataType.BIGINT, DataType.DOUBLE)

    @property
    def is_orderable(self) -> bool:
        """Whether <, >, BETWEEN, MIN/MAX make sense for this type."""
        return self is not DataType.BOOLEAN

    @staticmethod
    def from_string(name: str) -> "DataType":
        """Parse a type name as written in SQL/DDL (case-insensitive)."""
        normalized = name.strip().lower()
        aliases = {
            "integer": "int",
            "long": "bigint",
            "float": "double",
            "real": "double",
            "decimal": "double",
            "string": "varchar",
            "text": "varchar",
            "char": "varchar",
            "bool": "boolean",
        }
        normalized = aliases.get(normalized, normalized)
        try:
            return DataType(normalized)
        except ValueError:
            raise ValueError(f"unknown data type: {name!r}") from None


_NUMPY_DTYPES: dict[DataType, np.dtype] = {
    DataType.BOOLEAN: np.dtype(np.bool_),
    DataType.INT: np.dtype(np.int32),
    DataType.BIGINT: np.dtype(np.int64),
    DataType.DOUBLE: np.dtype(np.float64),
    DataType.VARCHAR: np.dtype(object),
    DataType.DATE: np.dtype(np.int32),
}


@dataclass
class ColumnVector:
    """A typed column of values with an optional validity mask.

    Attributes:
        dtype: Logical type of the column.
        data: Backing numpy array (``object`` dtype for VARCHAR).
        nulls: Boolean array, True where the value is NULL; ``None`` means
            no nulls anywhere (the common fast path).
    """

    dtype: DataType
    data: np.ndarray
    nulls: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        if self.nulls is not None and len(self.nulls) != len(self.data):
            raise ValueError("null mask length must match data length")

    def __len__(self) -> int:
        return len(self.data)

    @property
    def null_count(self) -> int:
        return 0 if self.nulls is None else int(self.nulls.sum())

    def has_nulls(self) -> bool:
        return self.nulls is not None and bool(self.nulls.any())

    @staticmethod
    def from_values(dtype: DataType, values: list) -> "ColumnVector":
        """Build a vector from a Python list; ``None`` entries become NULLs."""
        null_flags = np.array([value is None for value in values], dtype=bool)
        if dtype is DataType.VARCHAR:
            data = np.array(
                ["" if value is None else str(value) for value in values],
                dtype=object,
            )
        else:
            filler: object = False if dtype is DataType.BOOLEAN else 0
            data = np.array(
                [filler if value is None else value for value in values],
                dtype=dtype.numpy_dtype,
            )
        nulls = null_flags if null_flags.any() else None
        return ColumnVector(dtype, data, nulls)

    def to_values(self) -> list:
        """Convert back to a Python list with ``None`` for NULLs."""
        raw = self.data.tolist()
        if self.nulls is None:
            return raw
        return [None if null else value for value, null in zip(raw, self.nulls)]

    def take(self, indices: np.ndarray) -> "ColumnVector":
        """Gather rows by integer index (the join/sort building block)."""
        nulls = None if self.nulls is None else self.nulls[indices]
        return ColumnVector(self.dtype, self.data[indices], nulls)

    def filter(self, mask: np.ndarray) -> "ColumnVector":
        """Keep rows where ``mask`` is True."""
        nulls = None if self.nulls is None else self.nulls[mask]
        return ColumnVector(self.dtype, self.data[mask], nulls)

    def slice(self, start: int, stop: int) -> "ColumnVector":
        nulls = None if self.nulls is None else self.nulls[start:stop]
        return ColumnVector(self.dtype, self.data[start:stop], nulls)

    def concat(self, other: "ColumnVector") -> "ColumnVector":
        """Append ``other`` below this vector (dtypes must match)."""
        return ColumnVector.concat_all([self, other])

    @staticmethod
    def concat_all(vectors: "list[ColumnVector]") -> "ColumnVector":
        """Concatenate many vectors in one pass (dtypes must match).

        A single ``np.concatenate`` allocates the result once, so merging
        n pieces is O(total rows) — the pairwise ``concat`` loop it
        replaces re-copied every previously merged row and was O(n²).
        """
        if not vectors:
            raise ValueError("concat_all needs at least one vector")
        first = vectors[0]
        for vector in vectors[1:]:
            if vector.dtype is not first.dtype:
                raise ValueError(
                    f"dtype mismatch: {first.dtype} vs {vector.dtype}"
                )
        if len(vectors) == 1:
            return first
        data = np.concatenate([vector.data for vector in vectors])
        if all(vector.nulls is None for vector in vectors):
            nulls = None
        else:
            nulls = np.concatenate(
                [
                    vector.nulls
                    if vector.nulls is not None
                    else np.zeros(len(vector.data), dtype=bool)
                    for vector in vectors
                ]
            )
        return ColumnVector(first.dtype, data, nulls)

    def nbytes(self) -> int:
        """Approximate in-memory size; VARCHAR counts UTF-8 payload."""
        if self.dtype is DataType.VARCHAR:
            payload = sum(len(str(value).encode("utf-8")) for value in self.data)
            return payload + 4 * len(self.data)  # offsets
        size = int(self.data.nbytes)
        if self.nulls is not None:
            size += int(self.nulls.nbytes)
        return size


def date_to_days(iso_date: str) -> int:
    """Convert 'YYYY-MM-DD' to days since the Unix epoch."""
    import datetime as _dt

    delta = _dt.date.fromisoformat(iso_date) - _dt.date(1970, 1, 1)
    return delta.days


def days_to_date(days: int) -> str:
    """Convert days since the Unix epoch back to 'YYYY-MM-DD'."""
    import datetime as _dt

    return (_dt.date(1970, 1, 1) + _dt.timedelta(days=int(days))).isoformat()
