"""PixelsDB reproduction: serverless, NL-aided analytics with flexible
service levels and prices (ICDE 2025).

The package layers, bottom-up:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel.
* :mod:`repro.storage` — S3-like object store, Pixels columnar format,
  metadata catalog.
* :mod:`repro.engine` — vectorized SQL engine (lexer → parser → binder →
  planner → optimizer → executor).
* :mod:`repro.turbo` — Pixels-Turbo: coordinator, watermark-autoscaled VM
  cluster, cloud-function service, CF plan splitting, cost model.
* :mod:`repro.core` — the paper's contribution: three service levels with
  admission rules and $/TB prices, implemented by the Query Server.
* :mod:`repro.nl2sql` — the CodeS-analogue text-to-SQL service.
* :mod:`repro.rover` — the Pixels-Rover UI backend.
* :mod:`repro.workloads` / :mod:`repro.baselines` — datasets, arrival
  processes, and the comparison engines used by the benchmark harness.

:class:`PixelsDB` below wires all of it together for interactive use::

    from repro import PixelsDB, ServiceLevel

    db = PixelsDB()
    db.load_tpch("tpch", scale=0.1)
    sql = db.ask("tpch", "top 5 customers by account balance")
    query = db.submit("tpch", sql, ServiceLevel.RELAXED)
    db.run_to_completion()
    print(query.result_rows(), f"${query.price:.6f}")
"""

from __future__ import annotations

from repro.core import QueryServer, QueryStatus, ServerQuery, ServiceLevel
from repro.errors import PixelsError, TranslationError
from repro.nl2sql import CodesService
from repro.obs import CapturePolicy, GuardPolicy, Instrumentation
from repro.obs.alerts import AlertEngine, BurnRateRule, ThresholdRule, default_rules
from repro.obs.dashboard import (
    DashboardData,
    render_dashboard_html,
    render_dashboard_text,
)
from repro.obs.timeseries import ScrapeLoop, TimeSeriesStore
from repro.rover import RoverServer, UserStore
from repro.sim import Simulator
from repro.storage import BufferPool, CacheConfig, Catalog, ObjectStore
from repro.turbo import Coordinator, TurboConfig
from repro.workloads import LogsGenerator, TpchGenerator, load_dataset
from repro.workloads.tpch import TpchTable

__version__ = "1.0.0"

__all__ = [
    "AlertEngine",
    "BufferPool",
    "BurnRateRule",
    "CacheConfig",
    "CapturePolicy",
    "Catalog",
    "CodesService",
    "Coordinator",
    "DashboardData",
    "GuardPolicy",
    "Instrumentation",
    "ObjectStore",
    "PixelsDB",
    "PixelsError",
    "QueryServer",
    "QueryStatus",
    "RoverServer",
    "ScrapeLoop",
    "ServerQuery",
    "ServiceLevel",
    "Simulator",
    "ThresholdRule",
    "TimeSeriesStore",
    "TurboConfig",
    "UserStore",
    "__version__",
    "default_rules",
    "render_dashboard_html",
    "render_dashboard_text",
]


class PixelsDB:
    """One-stop façade over the whole system.

    Owns a simulator, an object store, a catalog, and — lazily, one per
    database schema — a Coordinator + QueryServer pair.  Time is simulated:
    after submitting queries, advance it with :meth:`run` or
    :meth:`run_to_completion`.
    """

    def __init__(
        self,
        config: TurboConfig | None = None,
        seed: int = 0,
        observe: bool = False,
        scrape_interval_s: float = 30.0,
        alert_rules: list[BurnRateRule | ThresholdRule] | None = None,
        capture: CapturePolicy | None = None,
        tenant_budgets: dict[str, float] | None = None,
        guard: GuardPolicy | None = None,
    ) -> None:
        """``observe=True`` switches on the full observability stack
        (:mod:`repro.obs`): tracer, metrics registry, SLO tracker,
        statement statistics, the query journal, a scrape loop
        snapshotting metrics every ``scrape_interval_s`` simulated
        seconds, and the burn-rate alert engine.  ``capture`` tunes the
        journal's tail-based slow-query capture policy (defaults to
        :class:`~repro.obs.CapturePolicy`'s defaults).  ``tenant_budgets``
        maps tenant → soft budget dollars: crossing one never blocks a
        query, it raises a ``TenantBudget:<tenant>`` alert through the
        alert engine and flags the tenant in the spend report.
        ``guard`` (a :class:`~repro.obs.GuardPolicy`, requires
        ``observe=True``) arms the projection guard: each server holds
        live bill/deadline projections against tenant budgets and
        service-level deadlines on its scheduler tick, alerting — and,
        opt-in, downgrading or cancelling — with every decision
        audit-logged (:meth:`guard_audit`).  The default is the inert
        no-op pair — query results and billed prices are identical
        either way."""
        self.config = config if config is not None else TurboConfig()
        self.seed = seed
        self.sim = Simulator(seed=seed)
        self.store = ObjectStore()
        self.catalog = Catalog()
        self.codes = CodesService()
        self._coordinators: dict[str, Coordinator] = {}
        self._servers: dict[str, QueryServer] = {}
        self.timeseries: TimeSeriesStore | None = None
        self.alerts: AlertEngine | None = None
        self.scrape_loop: ScrapeLoop | None = None
        self._guard_policy = guard
        if observe:
            self.obs = Instrumentation.create(
                clock=lambda: self.sim.now,
                capture=capture,
                budgets=tenant_budgets,
            )
            self.timeseries = TimeSeriesStore()
            rules = list(
                alert_rules if alert_rules is not None else default_rules()
            )
            if tenant_budgets:
                from repro.obs.spend import budget_rules

                rules.extend(budget_rules(tenant_budgets))
            self.alerts = AlertEngine(
                rules=rules,
                registry=self.obs.metrics,
                slo=self.obs.slo,
                store=self.timeseries,
            )
            self.scrape_loop = ScrapeLoop(
                self.sim,
                self.obs.metrics,
                self.timeseries,
                interval_s=scrape_interval_s,
                listeners=[self.alerts.evaluate],
            )
        else:
            self.obs = Instrumentation.disabled()

    # -- data loading -------------------------------------------------------------

    def load_tpch(self, schema: str, scale: float = 0.05, seed: int = 42) -> None:
        """Generate and load a TPC-H-style dataset under ``schema``."""
        load_dataset(
            self.store,
            self.catalog,
            schema,
            TpchGenerator(scale=scale, seed=seed).tables(),
            schema_comment="TPC-H style decision support data",
        )

    def load_logs(self, schema: str, num_rows: int = 20000, seed: int = 7) -> None:
        """Generate and load a web-log analytics dataset under ``schema``."""
        load_dataset(
            self.store,
            self.catalog,
            schema,
            [LogsGenerator(num_rows=num_rows, seed=seed).table()],
            schema_comment="web server access logs",
        )

    def load_tables(self, schema: str, tables: list[TpchTable]) -> None:
        """Load arbitrary generated tables under ``schema``."""
        load_dataset(self.store, self.catalog, schema, tables)

    # -- engines --------------------------------------------------------------------

    def coordinator(self, schema: str) -> Coordinator:
        if schema not in self._coordinators:
            self._coordinators[schema] = Coordinator(
                self.sim, self.config, self.catalog, self.store, schema,
                obs=self.obs,
            )
        return self._coordinators[schema]

    def query_server(
        self,
        schema: str,
        admission=None,
        shares: dict[str, float] | None = None,
        default_share: float = 1.0,
    ) -> QueryServer:
        """The (cached) query server for ``schema``.  ``admission``
        (an :class:`~repro.core.scheduler.AdmissionPolicy`) and the WFQ
        ``shares`` apply only when the server is first created."""
        if schema not in self._servers:
            server = QueryServer(
                self.sim,
                self.coordinator(schema),
                self.config,
                admission=admission,
                shares=shares,
                default_share=default_share,
                guard=self._guard_policy,
            )
            if server.guard is not None and self.alerts is not None:
                server.guard.alert_sink = self.alerts.events.append
            self._servers[schema] = server
        return self._servers[schema]

    def rover(self, users: UserStore, schema: str) -> RoverServer:
        """A Pixels-Rover backend over ``schema``'s query server."""
        return RoverServer(
            users, self.catalog, self.codes, self.query_server(schema)
        )

    # -- the three user verbs ----------------------------------------------------------

    def ask(self, schema: str, question: str) -> str:
        """Natural language → SQL via the text-to-SQL service."""
        response = self.codes.handle(
            {
                "question": question,
                "schema": self.catalog.describe_schema(schema),
            }
        )
        if response.get("error"):
            raise TranslationError(response["error"])
        return response["sql"]

    def submit(
        self,
        schema: str,
        sql: str,
        level: ServiceLevel = ServiceLevel.IMMEDIATE,
        result_limit: int | None = None,
        tenant: str | None = None,
    ) -> ServerQuery:
        """Submit SQL at a service level; advance time to see it finish.
        ``tenant`` tags the query for per-tenant spend accounting."""
        return self.query_server(schema).submit(
            sql, level, result_limit, tenant=tenant
        )

    # -- observability -------------------------------------------------------------------

    def explain(self, schema: str, sql: str) -> str:
        """Render the optimized plan with venue/cost annotations."""
        return self.coordinator(schema).explain(sql)

    def explain_analyze(self, schema: str, sql: str) -> str:
        """Execute ``sql`` inline and render the plan annotated with
        actual per-operator rows, bytes, and wall time."""
        return self.coordinator(schema).explain_analyze(sql)

    def metrics(self) -> str:
        """The Prometheus text exposition of every registered series
        (empty when the db was built without ``observe=True``)."""
        return self.obs.metrics.render()

    def trace(self, query_id: str) -> str:
        """Deterministic JSON span timeline for one query."""
        return self.obs.tracer.export_json(query_id)

    def export_traces(self) -> str:
        """Every recorded trace as one JSON document."""
        return self.obs.tracer.export_all_json()

    def profile(self, schema: str, query_id: str):
        """The finished query's cost/time attribution profile
        (:class:`~repro.obs.profiler.QueryProfile`): span tree fused with
        the per-operator profile, billed dollars attributed per node.
        Its folded/flame-graph exports are byte-reproducible for
        same-seed runs."""
        return self.query_server(schema).query_profile(query_id)

    # -- statement statistics & query journal ----------------------------------------

    def statements_top(self, k: int = 10, by: str = "dollars") -> str:
        """The fixed-width top-K statement table (``by`` is one of
        ``time``/``dollars``/``calls``; empty without ``observe=True``)."""
        return self.obs.statements.render_top(k, by)

    def statements_json(self) -> str:
        """Every statement-statistics entry as byte-stable JSON."""
        return self.obs.statements.export_json()

    def journal_jsonl(self) -> str:
        """The query journal — every lifecycle event, trace-correlated —
        as deterministic JSONL (empty without ``observe=True``)."""
        return self.obs.journal.export_jsonl()

    def journal_captures(self) -> list[dict]:
        """Journal records that tail-based capture enriched with the full
        profiler attribution tree and flame graph."""
        return self.obs.journal.captures()

    # -- metering ledger & spend accounting -------------------------------------------

    def ledger_jsonl(self) -> str:
        """The metering ledger — every charge and void, integer
        nanodollars — as byte-stable JSONL (empty without
        ``observe=True``)."""
        return self.obs.ledger.export_jsonl()

    def spend_report(self) -> dict:
        """The per-tenant spend report: net nanodollars, per-level
        split, soft-budget status, provider-side spend per venue."""
        return self.obs.spend.report()

    def spend_json(self) -> str:
        """Byte-stable JSON rendering of :meth:`spend_report`."""
        return self.obs.spend.export_json()

    def reconcile(self):
        """Replay every server's metering ledger and prove ledger ==
        profiler attribution == billed price == $/TB bytes basis, in
        exact integer arithmetic.  Returns one merged
        :class:`~repro.obs.reconcile.ReconciliationReport`."""
        from repro.obs.reconcile import ReconciliationReport, reconcile_server

        report = ReconciliationReport()
        # The ledger is shared across schemas: replay the events once
        # (via the first server), then cross-check every server's
        # queries against it.
        for index, schema in enumerate(sorted(self._servers)):
            report.merge(
                reconcile_server(
                    self._servers[schema], replay_events=index == 0
                )
            )
        return report

    # -- SLO engine ----------------------------------------------------------------

    def slo_report(self) -> dict:
        """Per-level compliance ratios, violation counts, and
        error-budget state (empty without ``observe=True``)."""
        return self.obs.slo.snapshot()

    def slo_json(self) -> str:
        """Every SLO record plus the summary, as deterministic JSON."""
        return self.obs.slo.export_json()

    def timeseries_jsonl(self) -> str:
        """The scrape loop's time-series store as deterministic JSONL.

        Takes one final scrape first so the tail of the run (after the
        last cadence tick) is captured."""
        if self.scrape_loop is None:
            return ""
        self.scrape_loop.scrape()
        return self.scrape_loop.store.export_jsonl()

    def alerts_jsonl(self) -> str:
        """The alert engine's transition log as deterministic JSONL."""
        return self.alerts.export_jsonl() if self.alerts is not None else ""

    def autoscaler_audit(self) -> list[dict]:
        """Every VM cluster's scaling decisions, time-ordered, with the
        owning schema attached — 1:1 with watermark-crossing counts."""
        entries: list[dict] = []
        for schema in sorted(self._coordinators):
            cluster = self._coordinators[schema].vm_cluster
            for decision in cluster.audit_log:
                entries.append({"schema": schema, **decision.to_dict()})
        entries.sort(key=lambda entry: (entry["time"], entry["schema"]))
        return entries

    def autoscaler_audit_jsonl(self) -> str:
        import json as _json

        lines = [
            _json.dumps(entry, sort_keys=True)
            for entry in self.autoscaler_audit()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    # -- live activity & projection guard ---------------------------------------------

    def activity(self) -> dict:
        """The live query-activity snapshot — every submission's
        lifecycle state, per-operator progress fractions, and projected
        nanodollar bill at the current simulated time (the
        ``pg_stat_activity`` of this system; empty without
        ``observe=True``)."""
        return self.obs.activity.snapshot()

    def activity_json(self) -> str:
        """Byte-stable JSON rendering of :meth:`activity`."""
        return self.obs.activity.export_json()

    def projection_report(self) -> dict:
        """Estimator accuracy over every billed query: per-query
        estimated vs. actual nanodollars plus the aggregate MAPE."""
        return self.obs.activity.projection_report()

    def projection_json(self) -> str:
        """Byte-stable JSON rendering of :meth:`projection_report`."""
        return self.obs.activity.export_projection_json()

    def guard_audit(self) -> list[dict]:
        """Every projection-guard decision across this instance's query
        servers, time-ordered with the owning schema attached — the
        guard's analogue of :meth:`autoscaler_audit`."""
        entries: list[dict] = []
        for schema in sorted(self._servers):
            guard = self._servers[schema].guard
            if guard is None:
                continue
            for payload in guard.audit():
                entries.append({"schema": schema, **payload})
        entries.sort(key=lambda entry: (entry["time"], entry["schema"]))
        return entries

    def guard_audit_jsonl(self) -> str:
        import json as _json

        lines = [
            _json.dumps(entry, sort_keys=True)
            for entry in self.guard_audit()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def dashboard_data(self, title: str = "PixelsDB operator dashboard") -> DashboardData:
        """The bundle both dashboard renderers consume (final scrape
        included)."""
        if self.scrape_loop is not None:
            self.scrape_loop.scrape()
        return DashboardData.build(
            title=title,
            now=self.sim.now,
            timeseries=self.timeseries or TimeSeriesStore(),
            slo=self.obs.slo,
            alerts=self.alerts,
            audit=self.autoscaler_audit(),
            seed=self.seed,
            registry=self.obs.metrics,
            statements=self.obs.statements,
            spend=self.obs.spend,
            scheduler=self._scheduler_snapshot(),
            activity=self.obs.activity,
        )

    def _scheduler_snapshot(self) -> dict | None:
        """The scheduler state of this instance's query servers; with
        several schemas the snapshots are keyed by schema name."""
        if not self._servers:
            return None
        if len(self._servers) == 1:
            (server,) = self._servers.values()
            return server.scheduler_snapshot()
        return {
            schema: self._servers[schema].scheduler_snapshot()
            for schema in sorted(self._servers)
        }

    def dashboard_html(self, title: str = "PixelsDB operator dashboard") -> str:
        """Self-contained static HTML operator report — byte-identical
        across same-seed runs."""
        return render_dashboard_html(self.dashboard_data(title))

    def dashboard_text(self, title: str = "PixelsDB operator dashboard") -> str:
        """Console rendering of the same report."""
        return render_dashboard_text(self.dashboard_data(title))

    # -- simulated time ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, seconds: float) -> None:
        """Advance simulated time by ``seconds``."""
        self.sim.run_until(self.sim.now + seconds)

    def run_to_completion(self, max_slices: int = 100_000) -> None:
        """Advance time until every submitted query is finished/failed."""
        for _ in range(max_slices):
            if all(
                query.status.is_terminal
                for server in self._servers.values()
                for query in server.queries
            ):
                return
            self.sim.run_until(self.sim.now + 60.0)
        raise PixelsError("queries did not complete; check for starvation")
