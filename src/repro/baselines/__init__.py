"""Baseline engines the paper compares itself against.

* :class:`PureCfCoordinator` — an Athena-like pure-serverless engine:
  every query fans out to cloud functions (§1's "existing serverless
  query engines" whose sustained-workload cost is 1–2 orders above MPP).
* :class:`PureVmCoordinator` — a provisioned MPP-style engine: every
  query runs in the VM cluster, never CF; optionally with the autoscaler
  frozen (a fixed-size provisioned cluster).
* :class:`SingleLevelServer` — the SIGMOD'23 Pixels-Turbo behaviour:
  adaptive CF acceleration but a single service level (everything is
  urgent); the ablation target for the paper's contribution.
* :func:`~repro.baselines.runner.run_workload` — the shared experiment
  harness benches use to replay an arrival schedule against any of these
  engines and collect cost/latency summaries.
"""

from repro.baselines.engines import (
    PureCfCoordinator,
    PureVmCoordinator,
    SingleLevelServer,
)
from repro.baselines.runner import WorkloadResult, run_workload

__all__ = [
    "PureCfCoordinator",
    "PureVmCoordinator",
    "SingleLevelServer",
    "WorkloadResult",
    "run_workload",
]
