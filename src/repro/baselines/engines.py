"""Baseline engine variants, as thin overrides of the hybrid Coordinator."""

from __future__ import annotations

from typing import Callable

from repro.core.query_server import QueryServer, ServerQuery
from repro.core.service_levels import ServiceLevel
from repro.turbo.coordinator import Coordinator


class PureCfCoordinator(Coordinator):
    """Athena-like: every query executes in cloud functions.

    The VM cluster exists only as the coordinator's host; queries never
    take VM slots, so elasticity is perfect and unit cost is maximal —
    exactly the trade §1 attributes to pure serverless engines.
    """

    def _choose_cf(self, cf_enabled: bool) -> bool:
        return True


class PureVmCoordinator(Coordinator):
    """Provisioned MPP-style: every query executes in the VM cluster.

    With ``fixed_size`` the autoscaler is frozen, modelling a statically
    provisioned cluster; otherwise the watermark autoscaler still runs
    (an auto-scaled but CF-less engine).
    """

    def __init__(self, *args, fixed_size: bool = False, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if fixed_size:
            self.vm_cluster.disable_autoscaler()

    def _choose_cf(self, cf_enabled: bool) -> bool:
        return False


class SingleLevelServer:
    """The SIGMOD'23 Pixels-Turbo front end: one implicit service level.

    Every submission behaves like the paper's *Immediate* level (adaptive
    CF acceleration, no queueing in the server) and is billed at the
    immediate rate — there is no cheaper tier to choose.  This is the
    ablation baseline for the paper's service-level contribution.
    """

    def __init__(self, server: QueryServer) -> None:
        self._server = server

    def submit(
        self,
        sql: str,
        result_limit: int | None = None,
        on_finish: Callable[[ServerQuery], None] | None = None,
    ) -> ServerQuery:
        return self._server.submit(
            sql,
            ServiceLevel.IMMEDIATE,
            result_limit=result_limit,
            on_finish=on_finish,
        )

    @property
    def queries(self) -> list[ServerQuery]:
        return self._server.queries

    def total_billed(self) -> float:
        return self._server.total_billed()

    def total_billed_nanodollars(self) -> int:
        return self._server.total_billed_nanodollars()
