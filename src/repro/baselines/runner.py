"""Shared experiment harness: replay an arrival schedule, collect numbers.

Every benchmark builds on :func:`run_workload`: it wires up a fresh
simulator + coordinator + query server over an already-loaded object
store/catalog, schedules each (time, sql, level) submission, runs the
simulation to completion, and returns a :class:`WorkloadResult` with the
per-level latency/billing summaries the paper's claims are stated in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.query_server import QueryServer, ServerQuery
from repro.core.service_levels import QueryStatus, ServiceLevel
from repro.errors import QueryRejectedError
from repro.obs import Instrumentation
from repro.obs.alerts import AlertEngine, BurnRateRule, ThresholdRule, default_rules
from repro.obs.dashboard import DashboardData
from repro.obs.timeseries import ScrapeLoop, TimeSeriesStore
from repro.sim import Simulator
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.turbo.config import TurboConfig
from repro.turbo.coordinator import Coordinator


@dataclass(frozen=True)
class Submission:
    """One scheduled query submission."""

    time: float
    sql: str
    level: ServiceLevel
    result_limit: int | None = None
    #: Billing tenant for spend accounting (None → server default).
    tenant: str | None = None


@dataclass
class WorkloadResult:
    """Everything a bench needs from one workload replay."""

    sim: Simulator
    coordinator: Coordinator
    server: QueryServer
    queries: list[ServerQuery] = field(default_factory=list)
    # Populated only when run_workload(observe=True):
    obs: Instrumentation | None = None
    timeseries: TimeSeriesStore | None = None
    alerts: AlertEngine | None = None
    scrape: ScrapeLoop | None = None

    def of_level(self, level: ServiceLevel) -> list[ServerQuery]:
        return [query for query in self.queries if query.level is level]

    def finished(self, level: ServiceLevel | None = None) -> list[ServerQuery]:
        pool = self.queries if level is None else self.of_level(level)
        return [q for q in pool if q.status is QueryStatus.FINISHED]

    def pending_times(self, level: ServiceLevel) -> list[float]:
        return [
            q.pending_time_s
            for q in self.of_level(level)
            if q.pending_time_s is not None
        ]

    def mean_pending(self, level: ServiceLevel) -> float:
        times = self.pending_times(level)
        return sum(times) / len(times) if times else math.nan

    def max_pending(self, level: ServiceLevel) -> float:
        times = self.pending_times(level)
        return max(times) if times else math.nan

    def billed(self, level: ServiceLevel | None = None) -> float:
        pool = self.queries if level is None else self.of_level(level)
        return sum(q.price for q in pool)

    def billed_per_tb(self, level: ServiceLevel) -> float:
        """Effective $/TB actually charged — experiment C1's measurement."""
        from repro.turbo.cost import TB

        finished = self.finished(level)
        inflation = self.coordinator.config.data_inflation
        scanned = sum(q.execution.bytes_scanned for q in finished) * inflation
        if scanned == 0:
            return math.nan
        return self.billed(level) / (scanned / TB)

    def provider_cost(self) -> float:
        return self.coordinator.total_provider_cost()

    def attributed_cost(self, level: ServiceLevel) -> float:
        """Provider cost attributable to this level's queries.

        CF queries carry their exact invocation cost.  VM queries share
        the cluster, so each is attributed its modelled worker-seconds at
        the VM unit price — the marginal-cost view used for C2.
        """
        total = 0.0
        for query in self.finished(level):
            total += query.execution.provider_cost
        return total

    def dashboard_data(self, title: str) -> DashboardData:
        """The operator-dashboard bundle for an observed replay
        (requires ``run_workload(observe=True)``)."""
        if self.obs is None or self.timeseries is None:
            raise ValueError("run the workload with observe=True first")
        if self.scrape is not None:
            self.scrape.scrape()
        return DashboardData.build(
            title=title,
            now=self.sim.now,
            timeseries=self.timeseries,
            slo=self.obs.slo,
            alerts=self.alerts,
            audit=[
                decision.to_dict()
                for decision in self.coordinator.vm_cluster.audit_log
            ],
            registry=self.obs.metrics,
            statements=self.obs.statements,
            spend=self.obs.spend,
            scheduler=self.server.scheduler_snapshot(),
            activity=self.obs.activity,
        )


def run_workload(
    submissions: list[Submission],
    store: ObjectStore,
    catalog: Catalog,
    schema: str,
    config: TurboConfig | None = None,
    coordinator_cls: type[Coordinator] = Coordinator,
    seed: int = 0,
    horizon_s: float | None = None,
    coordinator_kwargs: dict | None = None,
    observe: bool = False,
    scrape_interval_s: float = 30.0,
    alert_rules: list[BurnRateRule | ThresholdRule] | None = None,
    server_kwargs: dict | None = None,
) -> WorkloadResult:
    """Replay ``submissions`` against a fresh engine instance.

    Args:
        submissions: The arrival schedule (need not be sorted).
        store, catalog, schema: An already-loaded dataset.
        config: Runtime parameters; defaults to the paper's values.
        coordinator_cls: Swap in a baseline engine here.
        horizon_s: Stop the simulation at this time even if queries are
            still held (needed for best-effort queries that may never run
            in a saturated-forever scenario); None runs to quiescence.
        observe: Turn on the observability stack (tracer, metrics, SLO
            tracker, scrape loop, alert engine); query results and
            billed prices are unchanged either way.
        scrape_interval_s: Virtual-time cadence of the scrape loop.
        alert_rules: Alert rule set; defaults to
            :func:`repro.obs.alerts.default_rules`.
        server_kwargs: Extra :class:`QueryServer` keyword arguments —
            how fleet benches set admission policy and WFQ shares.
    """
    if config is None:
        config = TurboConfig()
    sim = Simulator(seed=seed)
    kwargs = dict(coordinator_kwargs or {})
    obs: Instrumentation | None = None
    timeseries: TimeSeriesStore | None = None
    alerts: AlertEngine | None = None
    scrape: ScrapeLoop | None = None
    if observe:
        obs = kwargs.get("obs")
        if obs is None:
            obs = Instrumentation.create(clock=lambda: sim.now)
            kwargs["obs"] = obs
        timeseries = TimeSeriesStore()
        alerts = AlertEngine(
            rules=alert_rules if alert_rules is not None else default_rules(),
            registry=obs.metrics,
            slo=obs.slo,
            store=timeseries,
        )
        scrape = ScrapeLoop(
            sim,
            obs.metrics,
            timeseries,
            interval_s=scrape_interval_s,
            listeners=[alerts.evaluate],
        )
    coordinator = coordinator_cls(sim, config, catalog, store, schema, **kwargs)
    server = QueryServer(sim, coordinator, config, **(server_kwargs or {}))
    if server.guard is not None and alerts is not None:
        # Projection-guard trips land in the same alert timeline as the
        # burn-rate/threshold rules.
        server.guard.alert_sink = alerts.events.append
    result = WorkloadResult(
        sim=sim,
        coordinator=coordinator,
        server=server,
        obs=obs,
        timeseries=timeseries,
        alerts=alerts,
        scrape=scrape,
    )

    def make_submit(submission: Submission):
        def submit() -> None:
            try:
                record = server.submit(
                    submission.sql,
                    submission.level,
                    result_limit=submission.result_limit,
                    tenant=submission.tenant,
                )
            except QueryRejectedError:
                # Admission/back-pressure refusals are a scheduling
                # outcome, not a harness error; the server's rejection
                # counters carry the tally.
                return
            result.queries.append(record)

        return submit

    ordered = sorted(submissions, key=lambda s: s.time)
    for submission in ordered:
        sim.schedule_at(submission.time, make_submit(submission))
    last_arrival = ordered[-1].time if ordered else 0.0
    if horizon_s is not None:
        sim.run_until(horizon_s)
    else:
        _run_to_quiescence(sim, result, last_arrival)
    if scrape is not None:
        scrape.scrape()  # capture the final state past the last tick
    return result


def _run_to_quiescence(
    sim: Simulator, result: WorkloadResult, last_arrival: float
) -> None:
    """Run until every submitted query reached a terminal status.

    The autoscaler and scheduler tick forever, so a bare ``sim.run()``
    never returns; instead advance in slices and stop once all queries
    are finished or failed.
    """
    slice_s = 60.0
    for _ in range(100_000):
        sim.run_until(sim.now + slice_s)
        if sim.now >= last_arrival and all(
            q.status.is_terminal for q in result.queries
        ):
            return
    raise RuntimeError("workload did not quiesce; check for starved queries")
