"""Schema pruning: select the schema elements relevant to a question.

This is CodeS's first stage (§3.3): before generation, score every table
and column against the question and keep only the most related ones, so
arbitrarily wide tables never overflow the generator's context.  Scoring
is lexical: question tokens are matched against identifier parts
(``o_totalprice`` → ``o``, ``total``, ``price``), column comments, and a
small synonym table; light stemming handles plurals.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.storage.catalog import ColumnMeta, SchemaMeta, TableMeta

SYNONYMS: dict[str, set[str]] = {
    "price": {"cost", "amount", "value", "revenue", "spend", "spent"},
    "total": {"sum", "overall"},
    "name": {"called", "named"},
    "date": {"day", "time", "when"},
    "status": {"state"},
    "count": {"number", "many"},
    "customer": {"client", "buyer", "user"},
    "order": {"purchase", "sale"},
    "nation": {"country"},
    "region": {"continent", "area"},
    "supplier": {"vendor", "seller"},
    "quantity": {"qty", "units"},
    "discount": {"rebate", "reduction"},
    "url": {"page", "path", "endpoint"},
    "latency": {"delay", "slow", "slowness"},
    "bytes": {"size", "traffic"},
    "segment": {"category"},
    "balance": {"funds"},
    "priority": {"urgency"},
}


def tokenize(text: str) -> list[str]:
    """Lowercase word tokens; identifier-friendly (splits on ``_`` too)."""
    return [token for token in re.split(r"[^a-z0-9]+", text.lower()) if token]


def stem(token: str) -> str:
    """Tiny plural stemmer: enough for schema-word matching."""
    if token.endswith(("ss", "us", "is")):  # status, address, analysis
        return token
    if token.endswith("ies") and len(token) > 5:
        return token[:-3] + "y"  # countries → country
    if token.endswith("es") and len(token) > 4 and token[-3] in "sxzh":
        return token[:-2]  # boxes → box, dishes → dish
    if token.endswith("s") and len(token) > 3:
        return token[:-1]  # prices → price
    return token


STOPWORDS = {
    "the", "a", "an", "of", "in", "on", "at", "for", "to", "with", "and",
    "or", "is", "are", "was", "were", "have", "has", "had", "do", "does",
    "what", "which", "who", "how", "many", "much", "show", "list", "me",
    "all", "their", "its", "by", "per", "each", "there", "that", "this",
    "i", "you", "we", "be", "it",
}


def _expand(tokens: list[str]) -> set[str]:
    """Token set closed under stemming and synonym equivalence; stopwords
    are dropped so phrases like "nation of the supplier" match on content
    words only."""
    expanded: set[str] = set()
    for token in tokens:
        if token in STOPWORDS:
            continue
        stemmed = stem(token)
        expanded.add(token)
        expanded.add(stemmed)
        for canonical, alternates in SYNONYMS.items():
            if stemmed == canonical or stemmed in alternates:
                expanded.add(canonical)
                expanded.update(alternates)
    return expanded


@dataclass(frozen=True)
class ScoredColumn:
    table: str
    column: ColumnMeta
    score: float


@dataclass
class PrunedSchema:
    """What survives pruning: ranked tables and columns.

    ``serialize()`` produces the single-sequence form that would be fed to
    the generation model (and which our rule translator consumes).
    """

    tables: list[TableMeta] = field(default_factory=list)
    columns: list[ScoredColumn] = field(default_factory=list)

    @property
    def table_names(self) -> list[str]:
        return [table.name for table in self.tables]

    def columns_of(self, table_name: str) -> list[ScoredColumn]:
        return [sc for sc in self.columns if sc.table == table_name]

    def serialize(self) -> str:
        parts = []
        for table in self.tables:
            columns = ", ".join(
                f"{sc.column.name} {sc.column.dtype.value}"
                for sc in self.columns_of(table.name)
            )
            parts.append(f"{table.name}({columns})")
        return " | ".join(parts)


class SchemaPruner:
    """Ranks schema elements by lexical relevance to a question."""

    def __init__(
        self, max_tables: int = 4, max_columns_per_table: int = 12
    ) -> None:
        self._max_tables = max_tables
        self._max_columns = max_columns_per_table

    def prune(self, schema: SchemaMeta, question: str) -> PrunedSchema:
        """Keep the top tables/columns for ``question``.

        Key columns (FK endpoints) of the kept tables are always retained
        so join paths survive pruning, whatever the table width.
        """
        question_tokens = _expand(tokenize(question))
        table_scores: list[tuple[float, TableMeta]] = []
        column_scores: dict[str, list[ScoredColumn]] = {}
        for table in schema.tables.values():
            columns = [
                ScoredColumn(
                    table.name, column, self._score_column(column, question_tokens)
                )
                for column in table.columns
            ]
            columns.sort(key=lambda sc: -sc.score)
            column_scores[table.name] = columns
            table_score = self._score_table(table, question_tokens) + sum(
                sc.score for sc in columns[:3]
            )
            table_scores.append((table_score, table))
        table_scores.sort(key=lambda pair: -pair[0])
        kept_tables = [
            table
            for score, table in table_scores[: self._max_tables]
            if score > 0
        ]
        if not kept_tables and table_scores:
            kept_tables = [table_scores[0][1]]
        pruned = PrunedSchema(tables=kept_tables)
        key_columns = self._key_columns(schema, kept_tables)
        for table in kept_tables:
            kept: list[ScoredColumn] = []
            for sc in column_scores[table.name]:
                is_key = (table.name, sc.column.name) in key_columns
                if sc.score > 0 or is_key:
                    kept.append(sc)
                if len(kept) >= self._max_columns:
                    break
            if not kept:
                kept = column_scores[table.name][:3]
            pruned.columns.extend(kept)
        return pruned

    @staticmethod
    def _key_columns(
        schema: SchemaMeta, tables: list[TableMeta]
    ) -> set[tuple[str, str]]:
        names = {table.name for table in tables}
        keys: set[tuple[str, str]] = set()
        for table in tables:
            for fk in table.foreign_keys:
                if fk.ref_table in names:
                    keys.add((table.name, fk.column))
                    keys.add((fk.ref_table, fk.ref_column))
        return keys

    @staticmethod
    def _score_table(table: TableMeta, question_tokens: set[str]) -> float:
        name_tokens = _expand(tokenize(table.name) + tokenize(table.comment))
        return 2.0 * len(name_tokens & question_tokens)

    @staticmethod
    def _score_column(column: ColumnMeta, question_tokens: set[str]) -> float:
        name_tokens = _expand(tokenize(column.name))
        comment_tokens = _expand(tokenize(column.comment))
        return 1.0 * len(name_tokens & question_tokens) + 0.5 * len(
            comment_tokens & question_tokens
        )
