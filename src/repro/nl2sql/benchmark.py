"""Spider-style synthetic benchmark for the text-to-SQL pipeline.

Spider/BIRD themselves are not redistributable here, so the benchmark
*generates* single-turn (question, gold SQL) pairs from templates over a
real catalog, with paraphrase channels (synonyms, filler prefixes) and a
hard-phrasing channel the parser does not handle — keeping measured
accuracy meaningfully below 100 %.  Accuracy is **execution accuracy**, as
in the CodeS paper: the translated query and the gold query are both
executed and their result multisets compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import PixelsError
from repro.nl2sql.translator import RuleBasedTranslator, Translator
from repro.storage.catalog import ColumnMeta, SchemaMeta, TableMeta
from repro.storage.types import DataType

FILLERS = [
    "", "", "", "please tell me ", "could you tell me ", "i want to know ",
    "i would like to know ",
]

# Phrasings outside the parser's comparator vocabulary: honest error mass.
HARD_COMPARATORS = ["not exceeding", "no less than", "within"]


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark item."""

    question: str
    gold_sql: str
    template: str
    hard: bool = False


@dataclass
class CaseResult:
    case: BenchmarkCase
    predicted_sql: str
    correct: bool
    error: str | None = None


@dataclass
class BenchmarkReport:
    """Aggregate accuracy over a benchmark run."""

    results: list[CaseResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def correct(self) -> int:
        return sum(1 for result in self.results if result.correct)

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0

    def per_template(self) -> dict[str, tuple[int, int]]:
        """template → (correct, total)."""
        buckets: dict[str, list[int]] = {}
        for result in self.results:
            bucket = buckets.setdefault(result.case.template, [0, 0])
            bucket[1] += 1
            if result.correct:
                bucket[0] += 1
        return {name: (c, t) for name, (c, t) in buckets.items()}

    def failures(self) -> list[CaseResult]:
        return [result for result in self.results if not result.correct]


def _column_phrase(column: ColumnMeta) -> str:
    """Natural-language words for a column: its comment, else name parts."""
    if column.comment:
        return column.comment
    parts = column.name.split("_")
    if len(parts) > 1 and len(parts[0]) <= 2:
        parts = parts[1:]  # drop TPC-H style prefixes: o_totalprice → totalprice
    return " ".join(parts)


class Nl2SqlBenchmark:
    """Generates cases over a schema and scores a translator on them."""

    def __init__(self, schema: SchemaMeta, seed: int = 0, hard_fraction: float = 0.12):
        self._schema = schema
        self._rng = np.random.default_rng(seed)
        self._hard_fraction = hard_fraction

    # -- generation ----------------------------------------------------------------

    def generate(self, count: int) -> list[BenchmarkCase]:
        makers = [
            self._make_count,
            self._make_count_filtered,
            self._make_aggregate,
            self._make_group,
            self._make_count_distinct,
            self._make_top_n,
            self._make_list_filtered,
            self._make_between,
            self._make_join_group,
        ]
        cases: list[BenchmarkCase] = []
        attempts = 0
        while len(cases) < count and attempts < count * 20:
            attempts += 1
            maker = makers[int(self._rng.integers(0, len(makers)))]
            case = maker()
            if case is not None:
                cases.append(case)
        return cases

    def _filler(self) -> str:
        return FILLERS[int(self._rng.integers(0, len(FILLERS)))]

    def _hard(self) -> bool:
        return bool(self._rng.uniform() < self._hard_fraction)

    def _pick_table(self, needs_numeric: bool = False) -> TableMeta | None:
        tables = [
            table
            for table in self._schema.tables.values()
            if not needs_numeric or self._numeric_columns(table)
        ]
        if not tables:
            return None
        return tables[int(self._rng.integers(0, len(tables)))]

    @staticmethod
    def _numeric_columns(table: TableMeta) -> list[ColumnMeta]:
        return [column for column in table.columns if column.dtype.is_numeric]

    @staticmethod
    def _varchar_columns(table: TableMeta) -> list[ColumnMeta]:
        return [
            column for column in table.columns if column.dtype is DataType.VARCHAR
        ]

    def _pick(self, columns: list[ColumnMeta]) -> ColumnMeta:
        return columns[int(self._rng.integers(0, len(columns)))]

    def _value(self) -> int:
        return int(self._rng.integers(1, 1000))

    def _make_count(self) -> BenchmarkCase | None:
        table = self._pick_table()
        if table is None:
            return None
        question = f"{self._filler()}how many {table.name} are there"
        return BenchmarkCase(
            question=question,
            gold_sql=f"SELECT count(*) FROM {table.name}",
            template="count",
        )

    def _make_count_filtered(self) -> BenchmarkCase | None:
        table = self._pick_table(needs_numeric=True)
        if table is None:
            return None
        column = self._pick(self._numeric_columns(table))
        value = self._value()
        hard = self._hard()
        if hard:
            comparator = HARD_COMPARATORS[
                int(self._rng.integers(0, len(HARD_COMPARATORS)))
            ]
        else:
            comparator = ["greater than", "more than", "over", "above"][
                int(self._rng.integers(0, 4))
            ]
        question = (
            f"{self._filler()}how many {table.name} have "
            f"{_column_phrase(column)} {comparator} {value}"
        )
        return BenchmarkCase(
            question=question,
            gold_sql=(
                f"SELECT count(*) FROM {table.name} "
                f"WHERE {column.name} > {value}"
            ),
            template="count_filtered",
            hard=hard,
        )

    def _make_aggregate(self) -> BenchmarkCase | None:
        table = self._pick_table(needs_numeric=True)
        if table is None:
            return None
        column = self._pick(self._numeric_columns(table))
        func, word = [("avg", "average"), ("max", "maximum"), ("min", "minimum")][
            int(self._rng.integers(0, 3))
        ]
        question = (
            f"{self._filler()}what is the {word} "
            f"{_column_phrase(column)} in {table.name}"
        )
        return BenchmarkCase(
            question=question,
            gold_sql=f"SELECT {func}({column.name}) FROM {table.name}",
            template="aggregate",
        )

    def _make_group(self) -> BenchmarkCase | None:
        table = self._pick_table(needs_numeric=True)
        if table is None or not self._varchar_columns(table):
            return None
        target = self._pick(self._numeric_columns(table))
        group = self._pick(self._varchar_columns(table))
        question = (
            f"{self._filler()}what is the total {_column_phrase(target)} "
            f"for each {_column_phrase(group)} in {table.name}"
        )
        return BenchmarkCase(
            question=question,
            gold_sql=(
                f"SELECT {group.name}, sum({target.name}) FROM {table.name} "
                f"GROUP BY {group.name}"
            ),
            template="group",
        )

    def _make_count_distinct(self) -> BenchmarkCase | None:
        table = self._pick_table()
        if table is None or not table.columns:
            return None
        column = self._pick(table.columns)
        question = (
            f"{self._filler()}how many different {_column_phrase(column)} "
            f"are there in {table.name}"
        )
        return BenchmarkCase(
            question=question,
            gold_sql=f"SELECT count(DISTINCT {column.name}) FROM {table.name}",
            template="count_distinct",
        )

    def _make_top_n(self) -> BenchmarkCase | None:
        table = self._pick_table(needs_numeric=True)
        if table is None:
            return None
        column = self._pick(self._numeric_columns(table))
        n = int(self._rng.integers(2, 10))
        question = (
            f"{self._filler()}top {n} {table.name} by {_column_phrase(column)}"
        )
        return BenchmarkCase(
            question=question,
            gold_sql=(
                f"SELECT {column.name} FROM {table.name} "
                f"ORDER BY {column.name} DESC LIMIT {n}"
            ),
            template="top_n",
        )

    def _make_list_filtered(self) -> BenchmarkCase | None:
        table = self._pick_table(needs_numeric=True)
        if table is None or len(table.columns) < 3:
            return None
        numeric = self._numeric_columns(table)
        filter_column = self._pick(numeric)
        listed = [c for c in table.columns if c.name != filter_column.name][:1]
        if not listed:
            return None
        value = self._value()
        question = (
            f"{self._filler()}show the {_column_phrase(listed[0])} of "
            f"{table.name} with {_column_phrase(filter_column)} "
            f"less than {value}"
        )
        return BenchmarkCase(
            question=question,
            gold_sql=(
                f"SELECT {listed[0].name} FROM {table.name} "
                f"WHERE {filter_column.name} < {value}"
            ),
            template="list_filtered",
        )

    def _make_between(self) -> BenchmarkCase | None:
        table = self._pick_table(needs_numeric=True)
        if table is None:
            return None
        column = self._pick(self._numeric_columns(table))
        low = self._value()
        high = low + int(self._rng.integers(1, 500))
        question = (
            f"{self._filler()}how many {table.name} have "
            f"{_column_phrase(column)} between {low} and {high}"
        )
        return BenchmarkCase(
            question=question,
            gold_sql=(
                f"SELECT count(*) FROM {table.name} "
                f"WHERE {column.name} BETWEEN {low} AND {high}"
            ),
            template="between",
        )

    def _make_join_group(self) -> BenchmarkCase | None:
        """Group a fact-table measure by a dimension attribute via an FK."""
        candidates = []
        for table in self._schema.tables.values():
            for fk in table.foreign_keys:
                parent = self._schema.tables.get(fk.ref_table)
                if parent is None:
                    continue
                numeric = self._numeric_columns(table)
                labels = self._varchar_columns(parent)
                if numeric and labels:
                    candidates.append((table, fk, parent, numeric, labels))
        if not candidates:
            return None
        table, fk, parent, numeric, labels = candidates[
            int(self._rng.integers(0, len(candidates)))
        ]
        target = self._pick(numeric)
        label = self._pick(labels)
        question = (
            f"{self._filler()}what is the total {_column_phrase(target)} "
            f"per {_column_phrase(label)}"
        )
        gold = (
            f"SELECT {label.name}, sum({target.name}) FROM {table.name} "
            f"JOIN {parent.name} ON {table.name}.{fk.column} "
            f"= {parent.name}.{fk.ref_column} GROUP BY {label.name}"
        )
        return BenchmarkCase(question=question, gold_sql=gold, template="join_group")

    # -- evaluation ----------------------------------------------------------------

    def evaluate(
        self,
        cases: list[BenchmarkCase],
        run_sql: Callable[[str], list[tuple]],
        translator: Translator | None = None,
    ) -> BenchmarkReport:
        """Execution accuracy: translate, run both, compare multisets."""
        if translator is None:
            translator = RuleBasedTranslator()
        report = BenchmarkReport()
        for case in cases:
            predicted_sql = ""
            try:
                translation = translator.translate(self._schema, case.question)
                predicted_sql = translation.sql
                predicted = run_sql(predicted_sql)
                gold = run_sql(case.gold_sql)
                correct = _rows_match(predicted, gold)
                report.results.append(
                    CaseResult(case, predicted_sql, correct)
                )
            except PixelsError as error:
                report.results.append(
                    CaseResult(case, predicted_sql, False, error=str(error))
                )
        return report


def _rows_match(a: list[tuple], b: list[tuple]) -> bool:
    """Multiset comparison with float tolerance."""
    if len(a) != len(b):
        return False
    return sorted(map(_normalize_row, a)) == sorted(map(_normalize_row, b))


def _normalize_row(row: tuple) -> tuple:
    normalized = []
    for value in row:
        if isinstance(value, float):
            normalized.append(round(value, 6))
        elif value is None:
            normalized.append("\x00null")
        else:
            normalized.append(str(value))
    return tuple(normalized)


def make_wide_schema(
    num_columns: int = 1000, table_name: str = "telemetry"
) -> SchemaMeta:
    """A pathologically wide table for the pruning stress test (§3.3:
    'tables of any width, including those with thousands of columns')."""
    columns = [ColumnMeta("event_id", DataType.BIGINT, "event id")]
    columns += [
        ColumnMeta(f"metric_{index:04d}", DataType.DOUBLE, f"metric number {index}")
        for index in range(num_columns - 2)
    ]
    columns.append(ColumnMeta("sensor_temperature", DataType.DOUBLE, "temperature"))
    schema = SchemaMeta(name="wide")
    schema.tables[table_name] = TableMeta(
        name=table_name, columns=columns, comment="wide telemetry fact table"
    )
    return schema
