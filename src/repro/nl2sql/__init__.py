"""Text-to-SQL service (the CodeS analogue, paper §2(3) and §3.3).

The real PixelsDB plugs in CodeS, a fine-tuned language model.  This
reproduction implements the same *pipeline* with a deterministic semantic
parser so the system is runnable offline:

1. :mod:`~repro.nl2sql.schema_pruning` — identify the schema elements most
   related to the question and serialize only those (what lets CodeS
   "adeptly handle tables of any width, including those with thousands of
   columns, without being constrained by context truncation").
2. :mod:`~repro.nl2sql.translator` — single-turn translation of the
   question plus pruned schema into an executable SQL query.
3. :mod:`~repro.nl2sql.protocol` — the JSON request/response REST shape
   Pixels-Rover speaks to the service; the translator behind it is
   pluggable, mirroring the paper's "the text-to-SQL service in PixelsDB
   is plug-able".
4. :mod:`~repro.nl2sql.benchmark` — a Spider-style synthetic benchmark
   measuring single-turn execution accuracy (the paper cites >80 %).
"""

from repro.nl2sql.benchmark import BenchmarkReport, Nl2SqlBenchmark
from repro.nl2sql.protocol import CodesService, TranslationRequest, TranslationResponse
from repro.nl2sql.schema_pruning import PrunedSchema, SchemaPruner
from repro.nl2sql.translator import RuleBasedTranslator, Translator

__all__ = [
    "BenchmarkReport",
    "CodesService",
    "Nl2SqlBenchmark",
    "PrunedSchema",
    "RuleBasedTranslator",
    "SchemaPruner",
    "TranslationRequest",
    "TranslationResponse",
    "Translator",
]
