"""The JSON request/response protocol of the text-to-SQL service.

Mirrors §2(3): "Pixels-Rover's backend compiles a JSON message containing
the question and the schema elements (e.g., table and column names) of the
user's selected database and sends it to CodeS.  Then, CodeS translates
the question into an SQL query and responds."

:class:`CodesService` is the in-process stand-in for the REST endpoint:
it accepts/returns JSON-serializable dicts, validates the message shape,
and delegates to a pluggable :class:`~repro.nl2sql.translator.Translator`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import ProtocolError, TranslationError
from repro.nl2sql.translator import RuleBasedTranslator, Translator
from repro.storage.catalog import ColumnMeta, ForeignKey, SchemaMeta, TableMeta
from repro.storage.types import DataType


@dataclass(frozen=True)
class TranslationRequest:
    """Parsed request message."""

    question: str
    schema: SchemaMeta

    @staticmethod
    def from_json(payload: dict) -> "TranslationRequest":
        if not isinstance(payload, dict):
            raise ProtocolError("request must be a JSON object")
        question = payload.get("question")
        if not isinstance(question, str) or not question.strip():
            raise ProtocolError("request needs a non-empty 'question' string")
        schema_payload = payload.get("schema")
        if not isinstance(schema_payload, dict):
            raise ProtocolError("request needs a 'schema' object")
        return TranslationRequest(
            question=question, schema=_schema_from_json(schema_payload)
        )


@dataclass(frozen=True)
class TranslationResponse:
    """Response message: the SQL plus pruning introspection."""

    sql: str
    confidence: float
    pruned_schema: str
    error: str | None = None

    def to_json(self) -> dict:
        payload: dict = {
            "sql": self.sql,
            "confidence": self.confidence,
            "pruned_schema": self.pruned_schema,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload


def _schema_from_json(payload: dict) -> SchemaMeta:
    """Rebuild a SchemaMeta from the wire shape produced by
    :meth:`repro.storage.catalog.Catalog.describe_schema`."""
    try:
        schema = SchemaMeta(name=payload["schema"])
        for table_payload in payload["tables"]:
            table = TableMeta(
                name=table_payload["name"],
                columns=[
                    ColumnMeta(
                        name=column["name"],
                        dtype=DataType(column["type"]),
                        comment=column.get("comment", ""),
                    )
                    for column in table_payload["columns"]
                ],
                comment=table_payload.get("comment", ""),
            )
            for fk in table_payload.get("foreign_keys", []):
                table.foreign_keys.append(
                    ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
                )
            schema.tables[table.name] = table
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed schema payload: {exc}") from exc
    return schema


class CodesService:
    """The text-to-SQL endpoint, pluggable behind a fixed message shape."""

    def __init__(self, translator: Translator | None = None) -> None:
        self._translator = (
            translator if translator is not None else RuleBasedTranslator()
        )

    def handle(self, payload: dict) -> dict:
        """One request/response round trip (single-turn, as in §3.3)."""
        request = TranslationRequest.from_json(payload)
        try:
            translation = self._translator.translate(
                request.schema, request.question
            )
        except TranslationError as error:
            return TranslationResponse(
                sql="", confidence=0.0, pruned_schema="", error=str(error)
            ).to_json()
        return TranslationResponse(
            sql=translation.sql,
            confidence=translation.confidence,
            pruned_schema=translation.pruned_schema.serialize(),
        ).to_json()

    def handle_text(self, body: str) -> str:
        """The REST framing: JSON text in, JSON text out."""
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
        return json.dumps(self.handle(payload))
