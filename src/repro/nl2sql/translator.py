"""Single-turn question → SQL translation.

:class:`RuleBasedTranslator` stands in for the CodeS generation model: it
consumes the question plus the *pruned* schema (never the full one — the
pruning contract is what makes wide tables workable) and emits one SQL
query in a single turn, as §3.3 describes.  The translator interface is
pluggable so a real model could be dropped in behind the same protocol.

The parser recognizes the analytic question shapes the demo exercises:
counting, aggregation (sum/avg/min/max), count-distinct, grouping
("per X" / "for each X"), top-N, attribute listing, and filters with
comparison/range/date/string predicates, joining tables over foreign-key
paths when a question spans more than one table.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Protocol

from repro.errors import TranslationError
from repro.nl2sql.schema_pruning import (
    PrunedSchema,
    SchemaPruner,
    stem,
    tokenize,
    _expand,
)
from repro.storage.catalog import SchemaMeta
from repro.storage.types import DataType


class Translator(Protocol):
    """Anything that can translate questions against a schema."""

    def translate(self, schema: SchemaMeta, question: str) -> "Translation":
        ...


@dataclass(frozen=True)
class Translation:
    """A produced query plus introspection the UI can display."""

    sql: str
    confidence: float
    pruned_schema: PrunedSchema


@dataclass(frozen=True)
class _Filter:
    column: "_ColumnRef"
    op: str  # '=', '<', '<=', '>', '>=', 'between'
    value: str  # already rendered as a SQL literal
    value2: str | None = None

    def to_sql(self) -> str:
        if self.op == "between":
            return f"{self.column.name} BETWEEN {self.value} AND {self.value2}"
        return f"{self.column.name} {self.op} {self.value}"


@dataclass(frozen=True)
class _ColumnRef:
    table: str
    name: str
    dtype: DataType


_COMPARATORS: list[tuple[str, str]] = [
    ("greater than or equal to", ">="),
    ("less than or equal to", "<="),
    ("greater than", ">"),
    ("more than", ">"),
    ("larger than", ">"),
    ("bigger than", ">"),
    ("over", ">"),
    ("above", ">"),
    ("exceeding", ">"),
    ("at least", ">="),
    ("less than", "<"),
    ("smaller than", "<"),
    ("under", "<"),
    ("below", "<"),
    ("at most", "<="),
    ("between", "between"),
    ("after", ">"),
    ("since", ">="),
    ("before", "<"),
    ("starting from", ">="),
    ("equal to", "="),
    ("equals", "="),
]

_AGG_KEYWORDS: list[tuple[str, str]] = [
    ("how many different", "count_distinct"),
    ("how many distinct", "count_distinct"),
    ("how many unique", "count_distinct"),
    ("number of different", "count_distinct"),
    ("number of distinct", "count_distinct"),
    ("how many", "count"),
    ("number of", "count"),
    ("count of", "count"),
    ("total number of", "count"),
    ("average", "avg"),
    ("mean", "avg"),
    ("total", "sum"),
    ("sum of", "sum"),
    ("overall", "sum"),
    ("maximum", "max"),
    ("highest", "max"),
    ("largest", "max"),
    ("biggest", "max"),
    ("max", "max"),
    ("minimum", "min"),
    ("lowest", "min"),
    ("smallest", "min"),
    ("min", "min"),
]

_GROUP_MARKERS = ["for each", "per", "grouped by", "broken down by", "by each"]

_NUMBER_WORDS = {
    "one": 1, "two": 2, "three": 3, "four": 4, "five": 5,
    "six": 6, "seven": 7, "eight": 8, "nine": 9, "ten": 10,
}


class RuleBasedTranslator:
    """Deterministic semantic parser over the pruned schema."""

    def __init__(self, pruner: SchemaPruner | None = None) -> None:
        self._pruner = pruner if pruner is not None else SchemaPruner()

    def translate(self, schema: SchemaMeta, question: str) -> Translation:
        if not question or not question.strip():
            raise TranslationError("empty question")
        pruned = self._pruner.prune(schema, question)
        if not pruned.tables:
            raise TranslationError("no relevant tables found for the question")
        # Pull quoted literals out before lowercasing so 'O' stays 'O'.
        literals: dict[str, str] = {}

        def _stash(match: re.Match) -> str:
            key = f"qv{len(literals)}"
            literals[key] = match.group(0)[1:-1]
            return key

        text = re.sub(
            r"'[^']*'|\"[^\"]*\"", _stash, question.strip().rstrip("?.!")
        ).lower()
        confidence = 1.0

        limit, order_desc, text = self._extract_top_n(text)
        filters, text = self._extract_filters(text, pruned, literals)
        if limit is None:
            group_column, text = self._extract_group(text, pruned)
            agg_func, agg_column, text = self._extract_aggregate(text, pruned)
        else:
            # A top-N question reads "by X" as the ranking key, not as an
            # aggregation; "total price" names the column there.
            group_column = agg_func = agg_column = None

        select_parts: list[str] = []
        order_by: str | None = None
        used_columns: list[_ColumnRef] = [f.column for f in filters]
        if group_column is not None:
            used_columns.append(group_column)
            select_parts.append(group_column.name)
        if agg_func is not None:
            agg_sql = self._render_aggregate(agg_func, agg_column)
            select_parts.append(agg_sql)
            if agg_column is not None:
                used_columns.append(agg_column)
        if limit is not None and agg_func is None:
            sort_column = self._pick_sort_column(text, pruned)
            if sort_column is not None:
                used_columns.append(sort_column)
                order_by = f"{sort_column.name} {'DESC' if order_desc else 'ASC'}"
                listed = self._listed_columns(text, pruned, exclude={sort_column.name})
                used_columns.extend(listed)
                select_parts = [c.name for c in listed] + [sort_column.name]
        if not select_parts:
            listed = self._listed_columns(text, pruned, exclude=set())
            if listed:
                select_parts = [c.name for c in listed]
                used_columns.extend(listed)
            else:
                select_parts = ["*"]
                confidence = 0.3
        tables = self._tables_for(used_columns, pruned)
        from_sql = self._render_from(tables, pruned)
        sql = f"SELECT {', '.join(dict.fromkeys(select_parts))} FROM {from_sql}"
        if filters:
            sql += " WHERE " + " AND ".join(f.to_sql() for f in filters)
        if group_column is not None:
            sql += f" GROUP BY {group_column.name}"
        if order_by is not None:
            sql += f" ORDER BY {order_by}"
        if limit is not None:
            sql += f" LIMIT {limit}"
        return Translation(sql=sql, confidence=confidence, pruned_schema=pruned)

    # -- component extractors ---------------------------------------------------

    @staticmethod
    def _extract_top_n(text: str) -> tuple[int | None, bool, str]:
        match = re.search(r"\btop\s+(\d+|\w+)\b", text)
        if not match:
            match = re.search(r"\b(\d+)\s+(?:best|largest|highest)\b", text)
            if not match:
                return None, True, text
        raw = match.group(1)
        count = _NUMBER_WORDS.get(raw)
        if count is None:
            try:
                count = int(raw)
            except ValueError:
                return None, True, text
        return count, True, text.replace(match.group(0), " ", 1)

    def _extract_filters(
        self, text: str, pruned: PrunedSchema, literals: dict[str, str]
    ) -> tuple[list[_Filter], str]:
        filters: list[_Filter] = []
        for phrase, op in _COMPARATORS:
            while True:
                pattern = rf"\b{re.escape(phrase)}\b\s+" + _VALUE_PATTERN
                match = re.search(pattern, text)
                if match is None:
                    break
                value_raw = match.group("value")
                prefix = text[: match.start()]
                column = self._column_before(prefix, pruned)
                column = self._retarget_date(column, value_raw, pruned)
                value2_raw = None
                consumed_end = match.end()
                if op == "between":
                    tail = text[match.end():]
                    second = re.match(r"\s*and\s+" + _VALUE_PATTERN, tail)
                    if second is None or column is None:
                        break
                    value2_raw = second.group("value")
                    consumed_end = match.end() + second.end()
                if column is None:
                    text = text[: match.start()] + " " + text[consumed_end:]
                    continue
                value = self._render_value(value_raw, column, literals)
                value2 = (
                    self._render_value(value2_raw, column, literals)
                    if value2_raw is not None
                    else None
                )
                filters.append(_Filter(column, op, value, value2))
                start = self._phrase_start(prefix, column)
                text = text[:start] + " " + text[consumed_end:]
        # "with status 'O'" style equality (no comparator word).
        match = re.search(r"\b(?:is|was|equal to|=)\s+" + _VALUE_PATTERN, text)
        if match:
            column = self._column_before(text[: match.start()], pruned)
            column = self._retarget_date(column, match.group("value"), pruned)
            if column is not None:
                value = self._render_value(match.group("value"), column, literals)
                filters.append(_Filter(column, "=", value))
                start = self._phrase_start(text[: match.start()], column)
                text = text[:start] + " " + text[match.end():]
        return filters, text

    @staticmethod
    def _phrase_start(prefix: str, column: _ColumnRef) -> int:
        """Index where the column phrase (≤3 trailing words) begins."""
        words = prefix.rstrip().rsplit(maxsplit=3)
        if len(words) <= 1:
            return 0
        return len(prefix.rstrip()) - sum(
            len(word) + 1 for word in words[1:]
        ) + 1

    def _extract_group(
        self, text: str, pruned: PrunedSchema
    ) -> tuple[_ColumnRef | None, str]:
        for marker in _GROUP_MARKERS:
            match = re.search(rf"\b{re.escape(marker)}\b\s+((?:\w+\s*){{1,3}})", text)
            if match is None:
                continue
            column = self._resolve_column(match.group(1), pruned)
            if column is not None:
                return column, text[: match.start()] + " " + text[match.end():]
        return None, text

    def _extract_aggregate(
        self, text: str, pruned: PrunedSchema
    ) -> tuple[str | None, _ColumnRef | None, str]:
        # Consider every aggregate keyword present, earliest in the text
        # first ("minimum total price" must read as MIN, not SUM), with
        # longer phrases winning ties at the same position.
        candidates: list[tuple[int, int, str, str, re.Match]] = []
        for rank, (phrase, func) in enumerate(_AGG_KEYWORDS):
            match = re.search(
                rf"\b{re.escape(phrase)}\b\s*((?:\w+\s*){{0,4}})", text
            )
            if match is not None:
                candidates.append((match.start(), rank, phrase, func, match))
        candidates.sort(key=lambda item: (item[0], item[1]))
        for _, _, phrase, func, match in candidates:
            target_phrase = match.group(1)
            column = self._resolve_column(target_phrase, pruned)
            if func in ("count", "count_distinct"):
                remaining = text[: match.start()] + " " + text[match.end():]
                if func == "count_distinct":
                    if column is None:
                        continue
                    return "count_distinct", column, remaining
                return "count", None, remaining
            if column is None:
                continue
            if not column.dtype.is_numeric and func in ("sum", "avg"):
                continue
            remaining = text[: match.start()] + " " + text[match.end():]
            return func, column, remaining
        return None, None, text

    @staticmethod
    def _render_aggregate(func: str, column: _ColumnRef | None) -> str:
        if func == "count":
            return "count(*)"
        if func == "count_distinct":
            assert column is not None
            return f"count(DISTINCT {column.name})"
        assert column is not None
        return f"{func}({column.name})"

    def _pick_sort_column(
        self, text: str, pruned: PrunedSchema
    ) -> _ColumnRef | None:
        match = re.search(r"\bby\s+((?:\w+\s*){1,3})", text)
        if match:
            column = self._resolve_column(match.group(1), pruned)
            if column is not None:
                return column
        match = re.search(
            r"\b(?:highest|largest|biggest|most|greatest)\s+((?:\w+\s*){1,3})", text
        )
        if match:
            return self._resolve_column(match.group(1), pruned)
        return None

    def _listed_columns(
        self, text: str, pruned: PrunedSchema, exclude: set[str]
    ) -> list[_ColumnRef]:
        """Columns explicitly named in a 'show/list the X and Y' question."""
        match = re.search(
            r"\b(?:show|list|display|give me|what are|return)\b(.*)", text
        )
        if match is None:
            return []
        phrase = match.group(1)
        columns: list[_ColumnRef] = []
        for piece in re.split(r",| and ", phrase):
            column = self._resolve_column(piece, pruned)
            if column is not None and column.name not in exclude:
                if all(column.name != existing.name for existing in columns):
                    columns.append(column)
        return columns

    # -- resolution helpers ----------------------------------------------------------

    def _column_before(
        self, prefix: str, pruned: PrunedSchema
    ) -> _ColumnRef | None:
        """Resolve the column phrase immediately preceding a comparator."""
        words = tokenize(prefix)[-3:]
        best: tuple[float, _ColumnRef] | None = None
        for take in (3, 2, 1):
            if len(words) >= take:
                candidate = self._resolve_column(" ".join(words[-take:]), pruned)
                if candidate is not None:
                    return candidate
        return best[1] if best else None

    def _resolve_column(
        self, phrase: str, pruned: PrunedSchema
    ) -> _ColumnRef | None:
        """Best pruned column for a free-text phrase, if any scores > 0."""
        phrase_tokens = _expand(tokenize(phrase))
        if not phrase_tokens:
            return None
        best_score = 0.0
        best: _ColumnRef | None = None
        for scored in pruned.columns:
            name_tokens = _expand(tokenize(scored.column.name))
            column_tokens = name_tokens | _expand(tokenize(scored.column.comment))
            overlap = len(phrase_tokens & column_tokens)
            if overlap == 0:
                continue
            # Precision term: "temperature" should prefer `temperature`
            # (1/1 of its tokens matched) over `sensor_id` (1/2 matched).
            precision = len(phrase_tokens & name_tokens) / max(len(name_tokens), 1)
            score = overlap + 0.5 * precision + 0.1 * scored.score
            if score > best_score:
                best_score = score
                best = _ColumnRef(
                    scored.table, scored.column.name, scored.column.dtype
                )
        return best

    @staticmethod
    def _retarget_date(
        column: "_ColumnRef | None", value_raw: str, pruned: PrunedSchema
    ) -> "_ColumnRef | None":
        """A date literal almost certainly filters a DATE column, whatever
        noun happened to precede the comparator ("orders after 1995-06-01"
        means the order *date*)."""
        if not re.fullmatch(r"\d{4}-\d{2}-\d{2}", value_raw.strip()):
            return column
        if column is not None and column.dtype is DataType.DATE:
            return column
        date_columns = [
            sc for sc in pruned.columns if sc.column.dtype is DataType.DATE
        ]
        if not date_columns:
            return column
        best = max(date_columns, key=lambda sc: sc.score)
        return _ColumnRef(best.table, best.column.name, best.column.dtype)

    @staticmethod
    def _render_value(
        raw: str, column: _ColumnRef, literals: dict[str, str]
    ) -> str:
        value = raw.strip()
        if value in literals:
            value = literals[value]
        else:
            value = value.strip("'\"")
        if re.fullmatch(r"\d{4}-\d{2}-\d{2}", value):
            return f"DATE '{value}'"
        if column.dtype is DataType.VARCHAR:
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if column.dtype is DataType.DATE:
            return f"DATE '{value}'"
        return value

    # -- FROM clause assembly -----------------------------------------------------------

    def _tables_for(
        self, used_columns: list[_ColumnRef], pruned: PrunedSchema
    ) -> list[str]:
        tables = list(dict.fromkeys(column.table for column in used_columns))
        if not tables:
            tables = [pruned.tables[0].name]
        return tables

    def _render_from(self, tables: list[str], pruned: PrunedSchema) -> str:
        if len(tables) == 1:
            return tables[0]
        path = self._join_path(tables, pruned)
        if path is None:
            raise TranslationError(
                f"cannot find a join path between tables {tables}"
            )
        ordered, edges = path
        sql = ordered[0]
        joined = {ordered[0]}
        for table in ordered[1:]:
            edge = next(
                (e for e in edges if (e[0] in joined) != (e[2] in joined)
                 and table in (e[0], e[2])),
                None,
            )
            if edge is None:
                raise TranslationError(f"no join edge reaches table {table!r}")
            left_table, left_column, right_table, right_column = edge
            sql += (
                f" JOIN {table} ON {left_table}.{left_column}"
                f" = {right_table}.{right_column}"
            )
            joined.add(table)
        return sql

    def _join_path(
        self, tables: list[str], pruned: PrunedSchema
    ) -> tuple[list[str], list[tuple[str, str, str, str]]] | None:
        """Order ``tables`` so each joins the previous ones via an FK edge.

        Uses BFS over the (undirected) FK graph of the pruned tables,
        allowing intermediate tables that were pruned in but not
        explicitly referenced.
        """
        edges: list[tuple[str, str, str, str]] = []
        for table in pruned.tables:
            for fk in table.foreign_keys:
                edges.append((table.name, fk.column, fk.ref_table, fk.ref_column))
        adjacency: dict[str, list[tuple[str, str, str, str]]] = {}
        for edge in edges:
            adjacency.setdefault(edge[0], []).append(edge)
            adjacency.setdefault(edge[2], []).append(edge)
        ordered = [tables[0]]
        included = {tables[0]}
        used_edges: list[tuple[str, str, str, str]] = []
        for target in tables[1:]:
            if target in included:
                continue
            path = self._bfs(ordered, target, adjacency)
            if path is None:
                return None
            for edge, node in path:
                if node not in included:
                    ordered.append(node)
                    included.add(node)
                    used_edges.append(edge)
        return ordered, used_edges

    @staticmethod
    def _bfs(sources, target, adjacency):
        from collections import deque

        visited = set(sources)
        queue = deque([(node, []) for node in sources])
        while queue:
            node, path = queue.popleft()
            if node == target:
                return path
            for edge in adjacency.get(node, []):
                neighbor = edge[2] if edge[0] == node else edge[0]
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append((neighbor, path + [(edge, neighbor)]))
        return None


_VALUE_PATTERN = (
    r"(?P<value>'[^']*'|\"[^\"]*\"|qv\d+|\d{4}-\d{2}-\d{2}|\d+(?:\.\d+)?)"
)
