"""Workloads: schema/data generators, query templates, arrival processes.

The paper evaluates Pixels-Turbo's auto-scaling on "typical analytical
workloads such as TPC-H and Internet log analysis" (§3.1).  This package
provides both:

* :mod:`~repro.workloads.tpch` — a TPC-H-style decision-support dataset
  (8 tables, FK graph, skew-free uniform data, scale-factor driven) and a
  set of query templates within the engine's SQL subset.
* :mod:`~repro.workloads.logs` — a web-log analytics dataset and queries.
* :mod:`~repro.workloads.arrivals` — arrival processes (steady Poisson,
  bursty on/off, spike step, diurnal sine) used by the scheduling and
  autoscaling experiments.
* :mod:`~repro.workloads.loader` — writes a generated dataset through the
  columnar format into the object store and registers it in a catalog.
"""

from repro.workloads.arrivals import (
    bursty_arrivals,
    diurnal_arrivals,
    spike_arrivals,
    steady_arrivals,
)
from repro.workloads.loader import load_dataset
from repro.workloads.logs import LogsGenerator, LOGS_QUERIES
from repro.workloads.tpch import TpchGenerator, TPCH_QUERIES

__all__ = [
    "LOGS_QUERIES",
    "LogsGenerator",
    "TPCH_QUERIES",
    "TpchGenerator",
    "bursty_arrivals",
    "diurnal_arrivals",
    "load_dataset",
    "spike_arrivals",
    "steady_arrivals",
]
