"""Internet log-analysis workload (the paper's second workload class).

A single wide ``web_logs`` fact table with the usual access-log columns
and a set of analytic queries (error rates, top URLs, traffic by hour,
latency per endpoint).  Timestamps are seconds since midnight of day 0 so
hour-of-day grouping is plain integer arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngRegistry
from repro.storage.catalog import ColumnMeta
from repro.storage.table import TableData
from repro.storage.types import ColumnVector, DataType
from repro.workloads.tpch import TpchTable

URL_PATHS = [
    "/", "/index.html", "/login", "/logout", "/search", "/cart",
    "/checkout", "/api/v1/items", "/api/v1/users", "/api/v1/orders",
    "/static/app.js", "/static/style.css", "/img/logo.png", "/admin",
]
HTTP_METHODS = ["GET", "POST", "PUT", "DELETE"]
STATUS_CODES = [200, 200, 200, 200, 200, 200, 301, 304, 400, 403, 404, 500, 503]
USER_AGENTS = ["curl", "chrome", "firefox", "safari", "bot"]


class LogsGenerator:
    """Deterministic web-access-log generator.

    Args:
        num_rows: Log lines to generate.
        seed: Root seed for reproducibility.
        days: Time span the log covers.
    """

    def __init__(self, num_rows: int = 20000, seed: int = 7, days: int = 7) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        self.num_rows = num_rows
        self.days = days
        self._rng = RngRegistry(seed)

    def table(self) -> TpchTable:
        rng = self._rng.stream("web_logs")
        n = self.num_rows
        timestamps = np.sort(
            rng.integers(0, self.days * 86400, n).astype(np.int64)
        )
        status = np.array(STATUS_CODES, dtype=np.int32)[
            rng.integers(0, len(STATUS_CODES), n)
        ]
        latency = np.round(rng.lognormal(3.0, 1.0, n), 1)  # milliseconds
        data = TableData(
            {
                "ts": ColumnVector(DataType.BIGINT, timestamps),
                "ip": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [
                        f"10.{a}.{b}.{c}"
                        for a, b, c in zip(
                            rng.integers(0, 16, n),
                            rng.integers(0, 256, n),
                            rng.integers(0, 256, n),
                        )
                    ],
                ),
                "method": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [HTTP_METHODS[i] for i in rng.integers(0, len(HTTP_METHODS), n)],
                ),
                "url": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [URL_PATHS[i] for i in rng.integers(0, len(URL_PATHS), n)],
                ),
                "status": ColumnVector(DataType.INT, status),
                "bytes_sent": ColumnVector(
                    DataType.BIGINT, rng.integers(100, 1_000_000, n).astype(np.int64)
                ),
                "latency_ms": ColumnVector(DataType.DOUBLE, latency),
                "agent": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [USER_AGENTS[i] for i in rng.integers(0, len(USER_AGENTS), n)],
                ),
            }
        )
        columns = [
            ColumnMeta("ts", DataType.BIGINT, "unix-style timestamp in seconds"),
            ColumnMeta("ip", DataType.VARCHAR, "client ip address"),
            ColumnMeta("method", DataType.VARCHAR, "http method"),
            ColumnMeta("url", DataType.VARCHAR, "request path"),
            ColumnMeta("status", DataType.INT, "http status code"),
            ColumnMeta("bytes_sent", DataType.BIGINT, "response size in bytes"),
            ColumnMeta("latency_ms", DataType.DOUBLE, "request latency in ms"),
            ColumnMeta("agent", DataType.VARCHAR, "user agent family"),
        ]
        return TpchTable("web_logs", columns, data, [], "web server access log")


LOGS_QUERIES: dict[str, str] = {
    "error_rate_by_url": (
        "SELECT url, count(*) AS errors FROM web_logs "
        "WHERE status >= 500 GROUP BY url ORDER BY errors DESC"
    ),
    "top_urls_by_traffic": (
        "SELECT url, sum(bytes_sent) AS total_bytes, count(*) AS hits "
        "FROM web_logs GROUP BY url ORDER BY total_bytes DESC LIMIT 10"
    ),
    "status_distribution": (
        "SELECT status, count(*) AS n FROM web_logs "
        "GROUP BY status ORDER BY status"
    ),
    "slow_requests": (
        "SELECT url, avg(latency_ms) AS avg_latency, max(latency_ms) AS worst "
        "FROM web_logs GROUP BY url HAVING avg(latency_ms) > 20 "
        "ORDER BY avg_latency DESC"
    ),
    "hourly_traffic": (
        "SELECT CAST(ts / 3600 AS int) % 24 AS hour_of_day, count(*) AS hits "
        "FROM web_logs GROUP BY CAST(ts / 3600 AS int) % 24 ORDER BY hour_of_day"
    ),
    "bot_share": (
        "SELECT agent, count(*) AS hits, count(DISTINCT ip) AS clients "
        "FROM web_logs GROUP BY agent ORDER BY hits DESC"
    ),
}
