"""Arrival processes for the scheduling and autoscaling experiments.

Every generator returns a sorted list of arrival times (seconds) within
``[0, duration_s)`` and is deterministic given its RNG.  The four shapes
cover the paper's workload narrative: steady sustained load (where VM
clusters shine), bursts and spikes (where CF elasticity shines), and a
diurnal cycle (where lazy scale-in matters).
"""

from __future__ import annotations

import numpy as np


def steady_arrivals(
    rng: np.random.Generator, duration_s: float, rate_per_s: float
) -> list[float]:
    """Homogeneous Poisson arrivals at ``rate_per_s``."""
    if rate_per_s <= 0:
        return []
    count = rng.poisson(rate_per_s * duration_s)
    times = np.sort(rng.uniform(0, duration_s, count))
    return times.tolist()


def bursty_arrivals(
    rng: np.random.Generator,
    duration_s: float,
    base_rate_per_s: float,
    burst_rate_per_s: float,
    burst_every_s: float,
    burst_length_s: float,
) -> list[float]:
    """On/off process: a low base rate with periodic high-rate bursts."""
    times: list[float] = []
    times.extend(steady_arrivals(rng, duration_s, base_rate_per_s))
    burst_start = burst_every_s
    while burst_start < duration_s:
        length = min(burst_length_s, duration_s - burst_start)
        burst = steady_arrivals(rng, length, burst_rate_per_s)
        times.extend(burst_start + t for t in burst)
        burst_start += burst_every_s
    return sorted(times)


def spike_arrivals(
    rng: np.random.Generator,
    duration_s: float,
    base_rate_per_s: float,
    spike_at_s: float,
    spike_queries: int,
    spike_spread_s: float = 1.0,
) -> list[float]:
    """A steady trickle plus one near-instant spike of ``spike_queries``.

    This is the workload shape the paper's CF acceleration exists for:
    the spike lands before the VM cluster can possibly scale out.
    """
    times = steady_arrivals(rng, duration_s, base_rate_per_s)
    spike = spike_at_s + rng.uniform(0, spike_spread_s, spike_queries)
    times.extend(float(t) for t in spike if t < duration_s)
    return sorted(times)


def diurnal_arrivals(
    rng: np.random.Generator,
    duration_s: float,
    peak_rate_per_s: float,
    period_s: float = 86400.0,
    trough_fraction: float = 0.1,
) -> list[float]:
    """Sinusoidal day/night cycle via thinning of a Poisson process."""
    if peak_rate_per_s <= 0:
        return []
    candidates = np.sort(
        rng.uniform(0, duration_s, rng.poisson(peak_rate_per_s * duration_s))
    )
    phase = 2 * np.pi * (candidates / period_s)
    # Intensity swings between trough_fraction and 1.0 of the peak.
    intensity = trough_fraction + (1 - trough_fraction) * (
        0.5 - 0.5 * np.cos(phase)
    )
    keep = rng.uniform(0, 1, len(candidates)) < intensity
    return candidates[keep].tolist()
