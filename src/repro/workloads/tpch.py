"""TPC-H-style dataset generator and query templates.

The generator produces the eight TPC-H tables with the standard
cardinality ratios (scaled by a ``scale`` factor: scale 1.0 ≈ the row
counts of TPC-H SF 0.01, keeping in-memory runs fast) and uniform value
distributions.  Dates span 1992-01-01 .. 1998-12-01 like the real
benchmark, so the classic date-window predicates are meaningful.

``TPCH_QUERIES`` holds named query templates covering the engine's SQL
subset: scans, multi-way joins, group-bys, CASE aggregation, and top-N —
the operator mix the paper's engine pushes down to CF workers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RngRegistry
from repro.storage.catalog import ColumnMeta
from repro.storage.table import TableData
from repro.storage.types import ColumnVector, DataType, date_to_days

START_DATE = date_to_days("1992-01-01")
END_DATE = date_to_days("1998-12-01")

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]
MARKET_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
ORDER_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_MODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
PART_TYPES = [
    "ECONOMY ANODIZED STEEL", "ECONOMY BRUSHED COPPER", "LARGE POLISHED TIN",
    "MEDIUM BURNISHED BRASS", "PROMO PLATED NICKEL", "PROMO BURNISHED STEEL",
    "SMALL ANODIZED COPPER", "STANDARD POLISHED BRASS",
]
PART_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
RETURN_FLAGS = ["A", "N", "R"]
LINE_STATUSES = ["F", "O"]
ORDER_STATUSES = ["F", "O", "P"]


@dataclass(frozen=True)
class TpchTable:
    """One generated table with its catalog description."""

    name: str
    columns: list[ColumnMeta]
    data: TableData
    foreign_keys: list[tuple[str, str, str]]  # (column, ref table, ref col)
    comment: str = ""


class TpchGenerator:
    """Deterministic TPC-H-style data generator.

    Args:
        scale: Multiplier on the base row counts (scale 1.0: 1 500
            customers, 15 000 orders, ~60 000 lineitems).
        seed: Root seed; the same (scale, seed) always produces identical
            bytes.
    """

    def __init__(self, scale: float = 1.0, seed: int = 42) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self._rng = RngRegistry(seed)
        self.num_customers = max(3, int(1500 * scale))
        self.num_orders = self.num_customers * 10
        self.num_parts = max(4, int(200 * scale))
        self.num_suppliers = max(2, int(10 * scale))

    def tables(self) -> list[TpchTable]:
        """Generate all eight tables (orders referenced by lineitem, etc.)."""
        region = self._region()
        nation = self._nation()
        supplier = self._supplier()
        customer = self._customer()
        part = self._part()
        partsupp = self._partsupp()
        orders = self._orders()
        lineitem = self._lineitem(orders.data)
        return [region, nation, supplier, customer, part, partsupp, orders, lineitem]

    # -- individual tables ------------------------------------------------------

    def _region(self) -> TpchTable:
        data = TableData(
            {
                "r_regionkey": ColumnVector.from_values(
                    DataType.INT, list(range(len(REGIONS)))
                ),
                "r_name": ColumnVector.from_values(DataType.VARCHAR, REGIONS),
            }
        )
        columns = [
            ColumnMeta("r_regionkey", DataType.INT, "region id"),
            ColumnMeta("r_name", DataType.VARCHAR, "region name"),
        ]
        return TpchTable("region", columns, data, [], "world regions")

    def _nation(self) -> TpchTable:
        data = TableData(
            {
                "n_nationkey": ColumnVector.from_values(
                    DataType.INT, list(range(len(NATIONS)))
                ),
                "n_name": ColumnVector.from_values(
                    DataType.VARCHAR, [name for name, _ in NATIONS]
                ),
                "n_regionkey": ColumnVector.from_values(
                    DataType.INT, [region for _, region in NATIONS]
                ),
            }
        )
        columns = [
            ColumnMeta("n_nationkey", DataType.INT, "nation id"),
            ColumnMeta("n_name", DataType.VARCHAR, "nation name"),
            ColumnMeta("n_regionkey", DataType.INT, "region of the nation"),
        ]
        return TpchTable(
            "nation", columns, data,
            [("n_regionkey", "region", "r_regionkey")], "countries",
        )

    def _supplier(self) -> TpchTable:
        rng = self._rng.stream("supplier")
        n = self.num_suppliers
        data = TableData(
            {
                "s_suppkey": ColumnVector(
                    DataType.BIGINT, np.arange(1, n + 1, dtype=np.int64)
                ),
                "s_name": ColumnVector.from_values(
                    DataType.VARCHAR, [f"Supplier#{i:09d}" for i in range(1, n + 1)]
                ),
                "s_nationkey": ColumnVector(
                    DataType.INT,
                    rng.integers(0, len(NATIONS), n).astype(np.int32),
                ),
                "s_acctbal": ColumnVector(
                    DataType.DOUBLE, np.round(rng.uniform(-999, 9999, n), 2)
                ),
            }
        )
        columns = [
            ColumnMeta("s_suppkey", DataType.BIGINT, "supplier id"),
            ColumnMeta("s_name", DataType.VARCHAR, "supplier name"),
            ColumnMeta("s_nationkey", DataType.INT, "nation of the supplier"),
            ColumnMeta("s_acctbal", DataType.DOUBLE, "account balance"),
        ]
        return TpchTable(
            "supplier", columns, data,
            [("s_nationkey", "nation", "n_nationkey")], "parts suppliers",
        )

    def _customer(self) -> TpchTable:
        rng = self._rng.stream("customer")
        n = self.num_customers
        data = TableData(
            {
                "c_custkey": ColumnVector(
                    DataType.BIGINT, np.arange(1, n + 1, dtype=np.int64)
                ),
                "c_name": ColumnVector.from_values(
                    DataType.VARCHAR, [f"Customer#{i:09d}" for i in range(1, n + 1)]
                ),
                "c_nationkey": ColumnVector(
                    DataType.INT,
                    rng.integers(0, len(NATIONS), n).astype(np.int32),
                ),
                "c_acctbal": ColumnVector(
                    DataType.DOUBLE, np.round(rng.uniform(-999, 9999, n), 2)
                ),
                "c_mktsegment": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [
                        MARKET_SEGMENTS[i]
                        for i in rng.integers(0, len(MARKET_SEGMENTS), n)
                    ],
                ),
            }
        )
        columns = [
            ColumnMeta("c_custkey", DataType.BIGINT, "customer id"),
            ColumnMeta("c_name", DataType.VARCHAR, "customer name"),
            ColumnMeta("c_nationkey", DataType.INT, "nation of the customer"),
            ColumnMeta("c_acctbal", DataType.DOUBLE, "account balance"),
            ColumnMeta("c_mktsegment", DataType.VARCHAR, "market segment"),
        ]
        return TpchTable(
            "customer", columns, data,
            [("c_nationkey", "nation", "n_nationkey")], "customers",
        )

    def _part(self) -> TpchTable:
        rng = self._rng.stream("part")
        n = self.num_parts
        data = TableData(
            {
                "p_partkey": ColumnVector(
                    DataType.BIGINT, np.arange(1, n + 1, dtype=np.int64)
                ),
                "p_name": ColumnVector.from_values(
                    DataType.VARCHAR, [f"part {i} burnished" for i in range(1, n + 1)]
                ),
                "p_brand": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [PART_BRANDS[i] for i in rng.integers(0, len(PART_BRANDS), n)],
                ),
                "p_type": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [PART_TYPES[i] for i in rng.integers(0, len(PART_TYPES), n)],
                ),
                "p_size": ColumnVector(
                    DataType.INT, rng.integers(1, 51, n).astype(np.int32)
                ),
                "p_retailprice": ColumnVector(
                    DataType.DOUBLE, np.round(rng.uniform(900, 2000, n), 2)
                ),
            }
        )
        columns = [
            ColumnMeta("p_partkey", DataType.BIGINT, "part id"),
            ColumnMeta("p_name", DataType.VARCHAR, "part name"),
            ColumnMeta("p_brand", DataType.VARCHAR, "brand"),
            ColumnMeta("p_type", DataType.VARCHAR, "part type"),
            ColumnMeta("p_size", DataType.INT, "size"),
            ColumnMeta("p_retailprice", DataType.DOUBLE, "retail price"),
        ]
        return TpchTable("part", columns, data, [], "parts catalog")

    def _partsupp(self) -> TpchTable:
        rng = self._rng.stream("partsupp")
        rows_per_part = 2
        part_keys = np.repeat(
            np.arange(1, self.num_parts + 1, dtype=np.int64), rows_per_part
        )
        n = len(part_keys)
        supp_keys = rng.integers(1, self.num_suppliers + 1, n).astype(np.int64)
        data = TableData(
            {
                "ps_partkey": ColumnVector(DataType.BIGINT, part_keys),
                "ps_suppkey": ColumnVector(DataType.BIGINT, supp_keys),
                "ps_availqty": ColumnVector(
                    DataType.INT, rng.integers(1, 10000, n).astype(np.int32)
                ),
                "ps_supplycost": ColumnVector(
                    DataType.DOUBLE, np.round(rng.uniform(1, 1000, n), 2)
                ),
            }
        )
        columns = [
            ColumnMeta("ps_partkey", DataType.BIGINT, "part id"),
            ColumnMeta("ps_suppkey", DataType.BIGINT, "supplier id"),
            ColumnMeta("ps_availqty", DataType.INT, "available quantity"),
            ColumnMeta("ps_supplycost", DataType.DOUBLE, "supply cost"),
        ]
        return TpchTable(
            "partsupp", columns, data,
            [
                ("ps_partkey", "part", "p_partkey"),
                ("ps_suppkey", "supplier", "s_suppkey"),
            ],
            "part-supplier offers",
        )

    def _orders(self) -> TpchTable:
        rng = self._rng.stream("orders")
        n = self.num_orders
        data = TableData(
            {
                "o_orderkey": ColumnVector(
                    DataType.BIGINT, np.arange(1, n + 1, dtype=np.int64)
                ),
                "o_custkey": ColumnVector(
                    DataType.BIGINT,
                    rng.integers(1, self.num_customers + 1, n).astype(np.int64),
                ),
                "o_orderstatus": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [ORDER_STATUSES[i] for i in rng.integers(0, 3, n)],
                ),
                "o_totalprice": ColumnVector(
                    DataType.DOUBLE, np.round(rng.uniform(800, 500000, n), 2)
                ),
                "o_orderdate": ColumnVector(
                    DataType.DATE,
                    rng.integers(START_DATE, END_DATE, n).astype(np.int32),
                ),
                "o_orderpriority": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [
                        ORDER_PRIORITIES[i]
                        for i in rng.integers(0, len(ORDER_PRIORITIES), n)
                    ],
                ),
            }
        )
        columns = [
            ColumnMeta("o_orderkey", DataType.BIGINT, "order id"),
            ColumnMeta("o_custkey", DataType.BIGINT, "ordering customer"),
            ColumnMeta("o_orderstatus", DataType.VARCHAR, "order status"),
            ColumnMeta("o_totalprice", DataType.DOUBLE, "total price"),
            ColumnMeta("o_orderdate", DataType.DATE, "order date"),
            ColumnMeta("o_orderpriority", DataType.VARCHAR, "priority"),
        ]
        return TpchTable(
            "orders", columns, data,
            [("o_custkey", "customer", "c_custkey")], "sales orders",
        )

    def _lineitem(self, orders: TableData) -> TpchTable:
        rng = self._rng.stream("lineitem")
        lines_per_order = rng.integers(1, 8, self.num_orders)
        order_keys = np.repeat(
            orders.column("o_orderkey").data, lines_per_order
        ).astype(np.int64)
        order_dates = np.repeat(orders.column("o_orderdate").data, lines_per_order)
        n = len(order_keys)
        quantity = rng.integers(1, 51, n).astype(np.float64)
        extended_price = np.round(quantity * rng.uniform(900, 2000, n), 2)
        ship_delay = rng.integers(1, 122, n)
        data = TableData(
            {
                "l_orderkey": ColumnVector(DataType.BIGINT, order_keys),
                "l_partkey": ColumnVector(
                    DataType.BIGINT,
                    rng.integers(1, self.num_parts + 1, n).astype(np.int64),
                ),
                "l_suppkey": ColumnVector(
                    DataType.BIGINT,
                    rng.integers(1, self.num_suppliers + 1, n).astype(np.int64),
                ),
                "l_quantity": ColumnVector(DataType.DOUBLE, quantity),
                "l_extendedprice": ColumnVector(DataType.DOUBLE, extended_price),
                "l_discount": ColumnVector(
                    DataType.DOUBLE, np.round(rng.uniform(0.0, 0.1, n), 2)
                ),
                "l_tax": ColumnVector(
                    DataType.DOUBLE, np.round(rng.uniform(0.0, 0.08, n), 2)
                ),
                "l_returnflag": ColumnVector.from_values(
                    DataType.VARCHAR, [RETURN_FLAGS[i] for i in rng.integers(0, 3, n)]
                ),
                "l_linestatus": ColumnVector.from_values(
                    DataType.VARCHAR, [LINE_STATUSES[i] for i in rng.integers(0, 2, n)]
                ),
                "l_shipdate": ColumnVector(
                    DataType.DATE, (order_dates + ship_delay).astype(np.int32)
                ),
                "l_shipmode": ColumnVector.from_values(
                    DataType.VARCHAR,
                    [SHIP_MODES[i] for i in rng.integers(0, len(SHIP_MODES), n)],
                ),
            }
        )
        columns = [
            ColumnMeta("l_orderkey", DataType.BIGINT, "order id"),
            ColumnMeta("l_partkey", DataType.BIGINT, "part id"),
            ColumnMeta("l_suppkey", DataType.BIGINT, "supplier id"),
            ColumnMeta("l_quantity", DataType.DOUBLE, "quantity"),
            ColumnMeta("l_extendedprice", DataType.DOUBLE, "extended price"),
            ColumnMeta("l_discount", DataType.DOUBLE, "discount fraction"),
            ColumnMeta("l_tax", DataType.DOUBLE, "tax fraction"),
            ColumnMeta("l_returnflag", DataType.VARCHAR, "return flag"),
            ColumnMeta("l_linestatus", DataType.VARCHAR, "line status"),
            ColumnMeta("l_shipdate", DataType.DATE, "ship date"),
            ColumnMeta("l_shipmode", DataType.VARCHAR, "ship mode"),
        ]
        return TpchTable(
            "lineitem", columns, data,
            [
                ("l_orderkey", "orders", "o_orderkey"),
                ("l_partkey", "part", "p_partkey"),
                ("l_suppkey", "supplier", "s_suppkey"),
            ],
            "order line items",
        )


TPCH_QUERIES: dict[str, str] = {
    # Q1-style pricing summary report.
    "q1_pricing_summary": (
        "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, "
        "sum(l_extendedprice) AS sum_base_price, "
        "sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
        "avg(l_quantity) AS avg_qty, count(*) AS count_order "
        "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    ),
    # Q3-style shipping-priority top-N.
    "q3_shipping_priority": (
        "SELECT o.o_orderkey, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue, "
        "o.o_orderdate "
        "FROM customer c, orders o, lineitem l "
        "WHERE c.c_mktsegment = 'BUILDING' AND c.c_custkey = o.o_custkey "
        "AND l.l_orderkey = o.o_orderkey AND o.o_orderdate < DATE '1995-03-15' "
        "GROUP BY o.o_orderkey, o.o_orderdate "
        "ORDER BY revenue DESC, o_orderdate LIMIT 10"
    ),
    # Q5-style local-supplier revenue by nation.
    "q5_local_supplier": (
        "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue "
        "FROM customer c, orders o, lineitem l, supplier s, nation n, region r "
        "WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey "
        "AND l.l_suppkey = s.s_suppkey AND c.c_nationkey = s.s_nationkey "
        "AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey "
        "AND r.r_name = 'ASIA' AND o.o_orderdate >= DATE '1994-01-01' "
        "AND o.o_orderdate < DATE '1995-01-01' "
        "GROUP BY n_name ORDER BY revenue DESC"
    ),
    # Q6-style forecast revenue change (highly selective scan).
    "q6_forecast_revenue": (
        "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem "
        "WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' "
        "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
    ),
    # Q12-style shipmode/priority with CASE aggregation.
    "q12_shipmode": (
        "SELECT l.l_shipmode, "
        "sum(CASE WHEN o.o_orderpriority = '1-URGENT' "
        "OR o.o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, "
        "sum(CASE WHEN o.o_orderpriority <> '1-URGENT' "
        "AND o.o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count "
        "FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey "
        "WHERE l.l_shipmode IN ('MAIL', 'SHIP') "
        "AND l.l_shipdate >= DATE '1994-01-01' "
        "AND l.l_shipdate < DATE '1995-01-01' "
        "GROUP BY l.l_shipmode ORDER BY l.l_shipmode"
    ),
    # Q14-style promotion effect.
    "q14_promo_effect": (
        "SELECT 100.00 * sum(CASE WHEN p.p_type LIKE 'PROMO%' "
        "THEN l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) / "
        "sum(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue "
        "FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey "
        "WHERE l.l_shipdate >= DATE '1995-09-01' "
        "AND l.l_shipdate < DATE '1995-10-01'"
    ),
    # Point lookup: the interactive end of the workload mix.
    "point_lookup": (
        "SELECT o_orderkey, o_totalprice, o_orderdate FROM orders "
        "WHERE o_orderkey = 42"
    ),
    # Wide scan: the expensive end of the workload mix.
    "top_customers": (
        "SELECT c.c_name, sum(o.o_totalprice) AS total_spent, count(*) AS orders "
        "FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "
        "GROUP BY c.c_name ORDER BY total_spent DESC LIMIT 20"
    ),
}
