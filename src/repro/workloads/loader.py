"""Dataset loading: generated tables → columnar files + catalog entries.

This is the ingest path a PixelsDB operator would run once per dataset:
write every table through the Pixels writer into object storage, register
schemas/tables/columns/FKs in the catalog, and record statistics so the
optimizer's build-side selection has real row counts.
"""

from __future__ import annotations

from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.storage.table import TableWriter
from repro.workloads.tpch import TpchTable


def load_dataset(
    store: ObjectStore,
    catalog: Catalog,
    schema_name: str,
    tables: list[TpchTable],
    bucket: str = "warehouse",
    rows_per_file: int = 65536,
    rows_per_group: int = 8192,
    schema_comment: str = "",
) -> None:
    """Write ``tables`` into ``store`` and register them under
    ``schema_name`` in ``catalog``.

    Foreign keys are registered after all tables exist so edges can point
    forward or backward in the list.
    """
    store.create_bucket(bucket)
    if not catalog.has_schema(schema_name):
        catalog.create_schema(schema_name, comment=schema_comment)
    for table in tables:
        prefix = f"{schema_name}/{table.name}"
        catalog.create_table(
            schema_name,
            table.name,
            table.columns,
            bucket=bucket,
            prefix=prefix,
            comment=table.comment,
        )
        TableWriter(
            store,
            bucket,
            prefix,
            rows_per_file=rows_per_file,
            rows_per_group=rows_per_group,
        ).write(table.data)
        catalog.update_statistics(
            schema_name,
            table.name,
            row_count=table.data.num_rows,
            size_bytes=store.total_bytes(bucket, prefix + "/"),
        )
    for table in tables:
        for column, ref_table, ref_column in table.foreign_keys:
            catalog.add_foreign_key(
                schema_name, table.name, column, ref_table, ref_column
            )
