"""Time-ordered event heap for the simulation kernel.

Events are ordered by ``(time, sequence)``: ties on time break in scheduling
order, which makes runs deterministic without requiring callbacks to be
comparable.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes:
        time: Simulated time at which the callback fires.
        seq: Monotonic tie-breaker assigned by the queue.
        callback: Zero-argument callable invoked when the event fires
            (bound arguments should be captured via ``functools.partial``
            or a closure).
        cancelled: Cancelled events stay in the heap but are skipped when
            popped; :meth:`EventQueue.cancel` flips this flag in O(1).
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event so the queue skips it when it reaches the top."""
        self.cancelled = True


class EventQueue:
    """A min-heap of :class:`Event` objects with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        event = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the time of the earliest live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (no-op if already fired)."""
        event.cancel()
