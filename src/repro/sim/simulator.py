"""The simulation event loop.

A :class:`Simulator` owns the clock and the event heap.  Components schedule
work with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and the driver advances time
with :meth:`run_until` / :meth:`run`.

Time is a float in **seconds**.  The kernel never converts units; the Turbo
configuration expresses scale-out lag, grace periods, etc. in seconds too.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry


class Simulator:
    """Discrete-event simulator: a clock plus a time-ordered event heap.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [5.0]
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue = EventQueue()
        self._running = False
        self.rng = RngRegistry(seed)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still scheduled."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        return self._queue.push(time, callback)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        self._queue.cancel(event)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event heap is empty.

        Args:
            max_events: Safety valve against runaway feedback loops; a
                simulation that fires this many events raises RuntimeError.
        """
        self._run(until=None, max_events=max_events)

    def run_until(self, time: float, max_events: int = 10_000_000) -> None:
        """Run all events with ``event.time <= time`` then set now = time."""
        if time < self._now:
            raise ValueError(f"cannot run backwards: {time} < {self._now}")
        self._run(until=time, max_events=max_events)
        self._now = max(self._now, time)

    def step(self) -> bool:
        """Fire the single earliest event.  Returns False if none remain."""
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        event.callback()
        return True

    def _run(self, until: float | None, max_events: int) -> None:
        if self._running:
            raise RuntimeError("simulator is not reentrant")
        self._running = True
        try:
            fired = 0
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    return
                if until is not None and next_time > until:
                    return
                event = self._queue.pop()
                assert event is not None
                self._now = event.time
                event.callback()
                fired += 1
                if fired >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events; "
                        "likely a feedback loop"
                    )
        finally:
            self._running = False
