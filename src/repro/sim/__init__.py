"""Discrete-event simulation kernel.

The Turbo runtime reproduces the paper's elasticity and pricing behaviour on
simulated time: VM scale-out takes 1-2 simulated minutes, CF workers spin up
in simulated milliseconds, and queries are charged simulated
resource-seconds.  This package provides the kernel those components run on:

* :class:`~repro.sim.simulator.Simulator` — the event loop and clock.
* :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue` —
  the time-ordered event heap.
* :class:`~repro.sim.rng.RngRegistry` — named, deterministic random streams
  so that two runs with the same seed are bit-identical regardless of how
  components interleave their draws.
* :class:`~repro.sim.trace.Trace` — time-series metric recording used by the
  benchmark harness to plot scaling traces and concurrency curves.
"""

from repro.sim.events import Event, EventQueue
from repro.sim.rng import RngRegistry
from repro.sim.simulator import Simulator
from repro.sim.trace import Trace, TracePoint

__all__ = [
    "Event",
    "EventQueue",
    "RngRegistry",
    "Simulator",
    "Trace",
    "TracePoint",
]
