"""Named deterministic random streams.

Simulation components must not share one RNG: if the VM cluster and the
workload generator drew from the same stream, adding a draw in one would
silently change the other's behaviour.  :class:`RngRegistry` derives an
independent ``numpy.random.Generator`` per stream name from a single root
seed, so results are reproducible and components are isolated.
"""

from __future__ import annotations

import numpy as np


class RngRegistry:
    """Factory of named, independently seeded random generators.

    Two registries built from the same root seed hand out identical streams
    for identical names, regardless of the order the streams are requested.

    Example:
        >>> a = RngRegistry(7).stream("arrivals").integers(0, 100, 3)
        >>> b = RngRegistry(7).stream("arrivals").integers(0, 100, 3)
        >>> (a == b).all()
        np.True_
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry derives all streams from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so draws within a stream advance its state as usual.
        """
        if name not in self._streams:
            key = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=(abs(hash_name(name)) % (2**32),),
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(key))
        return self._streams[name]


def hash_name(name: str) -> int:
    """Stable (non-salted) string hash: Python's ``hash`` is salted per
    process, which would break cross-run determinism."""
    value = 2166136261
    for byte in name.encode("utf-8"):
        value = (value ^ byte) * 16777619 % (2**64)
    return value
