"""Time-series metric recording for simulation runs.

The benchmark harness reconstructs the paper's scaling curves (VM count vs
time, concurrency vs time, workers provisioned after a demand step) from
:class:`Trace` objects recorded during a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True)
class TracePoint:
    """One sample of one metric: ``(time, value)`` plus optional tag."""

    time: float
    value: float
    tag: str = ""


class Trace:
    """Append-only collection of named metric time series."""

    def __init__(self) -> None:
        self._series: dict[str, list[TracePoint]] = {}

    def record(self, metric: str, time: float, value: float, tag: str = "") -> None:
        """Append one sample to ``metric``'s series."""
        self._series.setdefault(metric, []).append(TracePoint(time, value, tag))

    def series(self, metric: str) -> list[TracePoint]:
        """All samples recorded for ``metric`` (empty list if none)."""
        return list(self._series.get(metric, []))

    def metrics(self) -> list[str]:
        """Names of all metrics that have at least one sample."""
        return sorted(self._series)

    def last(self, metric: str) -> TracePoint | None:
        """Most recent sample of ``metric``, or None."""
        points = self._series.get(metric)
        return points[-1] if points else None

    def values(self, metric: str) -> list[float]:
        """Just the values of ``metric``'s samples, in time order."""
        return [point.value for point in self._series.get(metric, [])]

    def times(self, metric: str) -> list[float]:
        """Just the timestamps of ``metric``'s samples, in time order."""
        return [point.time for point in self._series.get(metric, [])]

    def value_at(self, metric: str, time: float, default: float = 0.0) -> float:
        """Step-function lookup: the last recorded value at or before ``time``."""
        result = default
        for point in self._series.get(metric, []):
            if point.time > time:
                break
            result = point.value
        return result

    def time_weighted_mean(
        self, metric: str, start: float, end: float, initial: float = 0.0
    ) -> float:
        """Average of the step function defined by ``metric`` over [start, end].

        Used for the low-watermark test in the autoscaler: the paper compares
        the *average* query concurrency within a period against the low
        watermark (e.g. 0.75), not an instantaneous sample.
        """
        if end <= start:
            return self.value_at(metric, start, initial)
        total = 0.0
        current_value = initial
        current_time = start
        for point in self._series.get(metric, []):
            if point.time <= start:
                current_value = point.value
                continue
            if point.time >= end:
                break
            total += current_value * (point.time - current_time)
            current_value = point.value
            current_time = point.time
        total += current_value * (end - current_time)
        return total / (end - start)

    def merge(self, other: "Trace") -> None:
        """Append all samples from ``other`` into this trace (stable order)."""
        for metric, points in other._series.items():
            self._series.setdefault(metric, []).extend(points)
            self._series[metric].sort(key=lambda p: p.time)

    def iter_points(self) -> Iterator[tuple[str, TracePoint]]:
        """Iterate ``(metric, point)`` pairs across every series."""
        for metric in self.metrics():
            for point in self._series[metric]:
                yield metric, point

    def to_csv(self, metrics: list[str] | None = None) -> str:
        """Render series as CSV (``metric,time,value,tag``) for plotting.

        Benchmarks keep their output textual, but downstream users often
        want the raw scaling/concurrency curves in a spreadsheet or
        matplotlib — this is the export for that.
        """
        names = metrics if metrics is not None else self.metrics()
        lines = ["metric,time,value,tag"]
        for metric in names:
            for point in self._series.get(metric, []):
                tag = point.tag.replace(",", ";")
                lines.append(f"{metric},{point.time},{point.value},{tag}")
        return "\n".join(lines) + "\n"


def downsample(points: Iterable[TracePoint], bucket: float) -> list[TracePoint]:
    """Reduce a series to one (last-value) sample per ``bucket`` seconds.

    Benchmarks use this to print compact ASCII scaling curves.
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    result: list[TracePoint] = []
    current_bucket: float | None = None
    for point in points:
        bucket_index = point.time // bucket
        if current_bucket is None or bucket_index != current_bucket:
            result.append(point)
            current_bucket = bucket_index
        else:
            result[-1] = point
    return result
