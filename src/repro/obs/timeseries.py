"""An in-memory metrics time-series store and its sim-clock scrape loop.

The PR-2 :class:`~repro.obs.metrics.MetricsRegistry` holds *current*
values; operators need *history* — queue depth over time, worker count
over time, billed $ per level over time.  :class:`ScrapeLoop` is the
bridge: on a fixed **virtual-time** cadence it runs the registry's
collectors and snapshots every sample into a :class:`TimeSeriesStore`.
Because scrape ticks are ordinary simulator events, the cadence is exact
and deterministic no matter how other events interleave, and the JSONL
export is byte-identical across same-seed runs.

The store is deliberately dumb: an append-only list of
``(time, name, labels, value)`` points with ordered-by-append iteration.
Dashboards and alert rules derive ratios/deltas at read time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import MetricsRegistry

_Labels = tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class TsPoint:
    """One scraped sample of one series."""

    time: float
    name: str
    labels: _Labels
    value: float

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


def _label_key(labels: dict[str, object]) -> _Labels:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class TimeSeriesStore:
    """Append-only store of scraped metric samples."""

    def __init__(self) -> None:
        self._points: list[TsPoint] = []
        self._scrape_times: list[float] = []

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> list[TsPoint]:
        return list(self._points)

    @property
    def scrape_times(self) -> list[float]:
        """The times at which full-registry snapshots were taken."""
        return list(self._scrape_times)

    def append(
        self, time: float, name: str, labels: _Labels, value: float
    ) -> None:
        self._points.append(TsPoint(time, name, labels, value))

    def mark_scrape(self, time: float) -> None:
        self._scrape_times.append(time)

    def names(self) -> list[str]:
        return sorted({point.name for point in self._points})

    def series(self, name: str, **labels: object) -> list[tuple[float, float]]:
        """``(time, value)`` samples of one series, in scrape order.

        With labels given, only exactly-matching points are returned;
        without, every point of ``name`` regardless of labels.
        """
        if labels:
            key = _label_key(labels)
            return [
                (p.time, p.value)
                for p in self._points
                if p.name == name and p.labels == key
            ]
        return [(p.time, p.value) for p in self._points if p.name == name]

    def label_sets(self, name: str) -> list[_Labels]:
        """Every distinct label set observed for ``name``, sorted."""
        return sorted({p.labels for p in self._points if p.name == name})

    def latest(self, name: str, **labels: object) -> float | None:
        samples = self.series(name, **labels)
        return samples[-1][1] if samples else None

    def value_delta(
        self, name: str, start: float, end: float, **labels: object
    ) -> float | None:
        """Increase of a cumulative series over ``(start, end]``.

        Returns None when the series has no sample at or before ``end``;
        a series that first appears inside the window counts from 0.
        """
        samples = self.series(name, **labels)
        at_end: float | None = None
        at_start = 0.0
        for time, value in samples:
            if time <= start:
                at_start = value
            if time <= end:
                at_end = value
        if at_end is None:
            return None
        return at_end - at_start

    def delta_sum(
        self, name: str, start: float, end: float, match: _Labels = ()
    ) -> float | None:
        """Sum of :meth:`value_delta` across every label set of ``name``
        that contains ``match`` as a subset — how a histogram's total
        ``_count``/``_sum`` growth is computed across its label space.

        Returns None when no matching series has a sample by ``end``.
        """
        wanted = set(match)
        total: float | None = None
        for labels in self.label_sets(name):
            if not wanted <= set(labels):
                continue
            delta = self.value_delta(name, start, end, **dict(labels))
            if delta is not None:
                total = delta if total is None else total + delta
        return total

    def export_jsonl(self) -> str:
        """One JSON object per point, append order, sorted keys —
        byte-identical across same-seed runs."""
        lines = [
            json.dumps(point.to_dict(), sort_keys=True)
            for point in self._points
        ]
        return "\n".join(lines) + ("\n" if lines else "")


class ScrapeLoop:
    """Snapshots a registry into a store on a fixed virtual-time cadence.

    Args:
        sim: The simulator (anything with ``.now`` and
            ``.schedule(delay, callback)``).
        registry: The live metrics registry to snapshot.
        store: Destination; a fresh one is created if omitted.
        interval_s: Scrape cadence in simulated seconds.
        listeners: Callables invoked with the scrape time after each
            snapshot — the alert engine hooks in here so rules evaluate
            on exactly the scrape cadence.
    """

    def __init__(
        self,
        sim,
        registry: MetricsRegistry,
        store: TimeSeriesStore | None = None,
        interval_s: float = 30.0,
        listeners: list[Callable[[float], None]] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self._sim = sim
        self._registry = registry
        self.store = store if store is not None else TimeSeriesStore()
        self.interval_s = interval_s
        self._listeners = list(listeners or [])
        self._last_scrape: float | None = None
        sim.schedule(interval_s, self._tick)

    def add_listener(self, listener: Callable[[float], None]) -> None:
        self._listeners.append(listener)

    def _tick(self) -> None:
        self._sim.schedule(self.interval_s, self._tick)
        self.scrape()

    def scrape(self) -> None:
        """Take one snapshot now (also used for a final flush at export
        time, so the last partial interval is not lost)."""
        now = self._sim.now
        if self._last_scrape is not None and now == self._last_scrape:
            return  # idempotent: a forced flush on a tick boundary
        self._last_scrape = now
        self._registry.collect()
        for instrument in self._registry.instruments():
            for sample_name, key, value in instrument.samples():
                self.store.append(now, sample_name, key, value)
        self.store.mark_scrape(now)
        for listener in self._listeners:
            listener(now)
