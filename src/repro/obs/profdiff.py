"""Profile diffs: attribute a regression to an operator and a resource.

Two inputs diff cleanly because both carry per-operator *self* values:

* two attribution trees (:class:`~repro.obs.profiler.ProfileNode`, or
  their dict serialization from a journal capture) — per-path deltas of
  virtual time, attributed nanodollars, bytes, and GETs;
* two benchmark records' ``"profile"`` sections (per-operator resource
  totals aggregated over a whole workload run) — what the perf gate
  diffs when a baseline comparison fails, so CI says "Scan regressed in
  bandwidth" instead of "a number changed".

Every delta names a dominant resource: the measured axis (bytes →
bandwidth, GETs → requests, virtual time → compute) with the largest
relative change; when only the attributed dollars moved the resource is
``pricing``.  Ordering is by |nanodollar delta|, then |time delta|, then
path — total and deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs.profiler import NANOS_PER_DOLLAR, ProfileNode

#: Measured axes a delta can be pinned on, with the resource each one
#: implicates (the same split the cost attribution uses).
_RESOURCE_AXES = (
    ("bytes_scanned", "bandwidth"),
    ("get_requests", "requests"),
    ("time_s", "compute"),
)


# ---------------------------------------------------------------------------
# Tree (de)serialization — journal captures store trees as plain dicts
# ---------------------------------------------------------------------------


def profile_to_dict(node: ProfileNode) -> dict:
    """A ProfileNode subtree as a JSON-ready dict (self values only)."""
    return {
        "name": node.name,
        "kind": node.kind,
        "self_time_s": round(node.self_time_s, 9),
        "bytes_scanned": node.bytes_scanned,
        "get_requests": node.get_requests,
        "footer_gets": node.footer_gets,
        "chunk_gets": node.chunk_gets,
        "rows_out": node.rows_out,
        "morsels": node.morsels,
        "self_nanodollars": node.self_nanodollars,
        "children": [profile_to_dict(child) for child in node.children],
    }


def profile_from_dict(data: dict) -> ProfileNode:
    """Inverse of :func:`profile_to_dict`."""
    return ProfileNode(
        name=data["name"],
        kind=data.get("kind", "operator"),
        self_time_s=data.get("self_time_s", 0.0),
        bytes_scanned=data.get("bytes_scanned", 0),
        get_requests=data.get("get_requests", 0),
        footer_gets=data.get("footer_gets", 0),
        chunk_gets=data.get("chunk_gets", 0),
        rows_out=data.get("rows_out", 0),
        morsels=data.get("morsels", 0),
        self_nanodollars=data.get("self_nanodollars", 0),
        children=[
            profile_from_dict(child) for child in data.get("children", [])
        ],
    )


# ---------------------------------------------------------------------------
# Flattening + deltas
# ---------------------------------------------------------------------------


def _as_node(profile: ProfileNode | dict) -> ProfileNode:
    if isinstance(profile, ProfileNode):
        return profile
    return profile_from_dict(profile)


def flatten_profile(profile: ProfileNode | dict) -> dict[str, dict]:
    """Per-path self totals: ``frame;frame;frame`` → resource dict.

    Identical sibling frames (retried execute spans, repeated operators)
    aggregate, matching the folded-stack view of the same tree.
    """
    totals: dict[str, dict] = {}

    def visit(node: ProfileNode, stack: list[str]) -> None:
        frames = stack + [node.frame()]
        path = ";".join(frames)
        row = totals.setdefault(
            path,
            {
                "time_s": 0.0,
                "nanodollars": 0,
                "bytes_scanned": 0,
                "get_requests": 0,
            },
        )
        row["time_s"] += node.self_time_s
        row["nanodollars"] += node.self_nanodollars
        row["bytes_scanned"] += node.bytes_scanned
        row["get_requests"] += node.get_requests
        for child in node.children:
            visit(child, frames)

    visit(_as_node(profile), [])
    return totals


@dataclass(frozen=True)
class OperatorDelta:
    """One operator path's (or operator name's) regression evidence."""

    path: str
    resource: str  # bandwidth | requests | compute | pricing | none
    time_base_s: float
    time_fresh_s: float
    nanodollars_base: int
    nanodollars_fresh: int
    bytes_base: int
    bytes_fresh: int
    gets_base: int
    gets_fresh: int

    @property
    def time_delta_s(self) -> float:
        return self.time_fresh_s - self.time_base_s

    @property
    def nanodollar_delta(self) -> int:
        return self.nanodollars_fresh - self.nanodollars_base

    @property
    def dollar_delta(self) -> float:
        return self.nanodollar_delta / NANOS_PER_DOLLAR

    @property
    def regressed(self) -> bool:
        return self.nanodollar_delta > 0 or self.time_delta_s > 1e-12


def _relative(base: float, fresh: float) -> float:
    if base == fresh:
        return 0.0
    return abs(fresh - base) / max(abs(base), 1e-12)


def _dominant_resource(row_base: dict, row_fresh: dict) -> str:
    """The measured axis with the largest relative change, mapped to the
    resource it implicates; ``pricing`` when only attributed $ moved."""
    best, best_change = "none", 0.0
    for axis, resource in _RESOURCE_AXES:
        change = _relative(
            float(row_base.get(axis, 0)), float(row_fresh.get(axis, 0))
        )
        if change > best_change:
            best, best_change = resource, change
    if best == "none" and row_base.get("nanodollars", 0) != row_fresh.get(
        "nanodollars", 0
    ):
        best = "pricing"
    return best


_EMPTY_ROW = {
    "time_s": 0.0,
    "nanodollars": 0,
    "bytes_scanned": 0,
    "get_requests": 0,
}


def _diff_tables(
    base: dict[str, dict], fresh: dict[str, dict]
) -> list[OperatorDelta]:
    deltas: list[OperatorDelta] = []
    for path in sorted(set(base) | set(fresh)):
        row_base = base.get(path, _EMPTY_ROW)
        row_fresh = fresh.get(path, _EMPTY_ROW)
        if row_base == row_fresh:
            continue
        deltas.append(
            OperatorDelta(
                path=path,
                resource=_dominant_resource(row_base, row_fresh),
                time_base_s=float(row_base.get("time_s", 0.0)),
                time_fresh_s=float(row_fresh.get("time_s", 0.0)),
                nanodollars_base=int(row_base.get("nanodollars", 0)),
                nanodollars_fresh=int(row_fresh.get("nanodollars", 0)),
                bytes_base=int(row_base.get("bytes_scanned", 0)),
                bytes_fresh=int(row_fresh.get("bytes_scanned", 0)),
                gets_base=int(row_base.get("get_requests", 0)),
                gets_fresh=int(row_fresh.get("get_requests", 0)),
            )
        )
    # Rank by |Δ$| then |Δt|; exact ties break deterministically on the
    # operator name (the path's leaf), then the dominant resource, then
    # the full path — never on dict insertion order.
    deltas.sort(
        key=lambda d: (
            -abs(d.nanodollar_delta),
            -abs(d.time_delta_s),
            d.path.rsplit(";", 1)[-1],
            d.resource,
            d.path,
        )
    )
    return deltas


def diff_profiles(
    base: ProfileNode | dict, fresh: ProfileNode | dict
) -> list[OperatorDelta]:
    """Diff two attribution trees, most-significant delta first."""
    return _diff_tables(flatten_profile(base), flatten_profile(fresh))


def diff_operator_tables(base: dict, fresh: dict) -> list[OperatorDelta]:
    """Diff two benchmark-record ``"profile"`` sections.

    Each section is ``{"operators": {name: {time_s, nanodollars,
    bytes_scanned, get_requests}}}`` — flat per-operator totals rather
    than paths, but the delta/resource logic is identical.
    """
    return _diff_tables(
        dict(base.get("operators", {})), dict(fresh.get("operators", {}))
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _fmt_axis(delta: OperatorDelta) -> str:
    if delta.resource == "bandwidth":
        base, fresh = delta.bytes_base, delta.bytes_fresh
        unit = "bytes"
    elif delta.resource == "requests":
        base, fresh = delta.gets_base, delta.gets_fresh
        unit = "GETs"
    else:
        return (
            f"time {delta.time_base_s:.6f}s -> {delta.time_fresh_s:.6f}s "
            f"({delta.time_delta_s:+.6f}s)"
        )
    if base == 0 and fresh != 0:
        return f"{unit} {base} -> {fresh} (new)"
    pct = _relative(base, fresh) * 100 * (1 if fresh >= base else -1)
    return f"{unit} {base} -> {fresh} ({pct:+.1f}%)"


def render_diff(
    deltas: list[OperatorDelta], limit: int = 10, prefix: str = ""
) -> str:
    """Human-readable delta lines: operator, resource, axis, $ movement."""
    lines: list[str] = []
    for delta in deltas[:limit]:
        operator = delta.path.rsplit(";", 1)[-1]
        direction = "regressed" if delta.regressed else "improved"
        lines.append(
            f"{prefix}{operator} {direction} in {delta.resource}: "
            f"{_fmt_axis(delta)}; attributed "
            f"{delta.dollar_delta:+.9f} $"
        )
    if not deltas:
        lines.append(f"{prefix}(no per-operator deltas)")
    return "\n".join(lines)


def export_diff_json(deltas: list[OperatorDelta]) -> str:
    """Byte-stable JSON export of a diff (tooling-facing)."""
    return (
        json.dumps(
            [
                {
                    "path": d.path,
                    "resource": d.resource,
                    "time_s": {"base": round(d.time_base_s, 9), "fresh": round(d.time_fresh_s, 9)},
                    "nanodollars": {"base": d.nanodollars_base, "fresh": d.nanodollars_fresh},
                    "bytes_scanned": {"base": d.bytes_base, "fresh": d.bytes_fresh},
                    "get_requests": {"base": d.gets_base, "fresh": d.gets_fresh},
                }
                for d in deltas
            ],
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
