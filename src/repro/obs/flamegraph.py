"""Self-contained SVG flame graphs over :class:`ProfileNode` trees.

No JavaScript, no external assets: a static SVG where every frame is a
``<rect>`` with a ``<title>`` tooltip, so it renders anywhere (GitHub CI
artifact previews included) and diffs cleanly.  Colors come from an md5
hash of the frame name — Python's built-in ``hash`` is salted per
process, md5 is not — so same-seed runs produce byte-identical files,
which the determinism tests assert.

Layout is the classic icicle: root on top spanning the full width, each
node's box spans its *cumulative* value, children laid left-to-right
inside it, the uncovered remainder being the node's self value.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING
from xml.sax.saxutils import escape

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.profiler import ProfileNode

ROW_HEIGHT = 18
HEADER_HEIGHT = 28
FONT_SIZE = 11
MIN_LABEL_WIDTH = 35.0  # px below which a frame gets no inline text


def _color(name: str, kind: str) -> str:
    """Deterministic warm color per frame name; operators skew orange,
    spans skew red, so the two tree layers are visually separable."""
    digest = hashlib.md5(name.encode("utf-8")).digest()
    v1, v2 = digest[0] / 255.0, digest[1] / 255.0
    if kind == "operator":
        r = 205 + int(50 * v1)
        g = 120 + int(80 * v2)
        b = 30 + int(40 * v1)
    else:
        r = 200 + int(55 * v1)
        g = 50 + int(90 * v2)
        b = 40 + int(50 * v2)
    return f"rgb({r},{g},{b})"


def _cum_value(node: "ProfileNode", value: str) -> int:
    from repro.obs.profiler import _node_value

    return _node_value(node, value) + sum(
        _cum_value(child, value) for child in node.children
    )


def _format_value(units: int, value: str) -> str:
    if value == "dollars":
        return f"${units / 1e9:.9f}"
    if units >= 1_000_000:
        return f"{units / 1e6:.3f} s"
    if units >= 1_000:
        return f"{units / 1e3:.3f} ms"
    return f"{units} µs"


def render_flamegraph_svg(
    root: "ProfileNode",
    value: str = "time",
    title: str = "flame graph",
    width: int = 1200,
) -> str:
    """Render the subtree as one static SVG document (a string)."""
    total = _cum_value(root, value)
    rects: list[tuple[int, float, float, "ProfileNode", int]] = []
    max_depth = 0

    def layout(node: "ProfileNode", depth: int, x0: float, span: float) -> None:
        nonlocal max_depth
        cum = _cum_value(node, value)
        if cum <= 0:
            return
        max_depth = max(max_depth, depth)
        rects.append((depth, x0, span, node, cum))
        # children left-to-right, each scaled by its share of this node
        x = x0
        for child in node.children:
            child_cum = _cum_value(child, value)
            if child_cum <= 0:
                continue
            child_span = span * child_cum / cum
            layout(child, depth + 1, x, child_span)
            x += child_span

    if total > 0:
        layout(root, 0, 0.0, float(width))
    height = HEADER_HEIGHT + (max_depth + 1) * ROW_HEIGHT + 6
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace">',
        f'<rect width="{width}" height="{height}" fill="#fdf6ec"/>',
        f'<text x="6" y="18" font-size="13" fill="#333">'
        f"{escape(title)} — total {_format_value(total, value)}</text>",
    ]
    for depth, x0, span, node, cum in rects:
        y = HEADER_HEIGHT + depth * ROW_HEIGHT
        pct = 100.0 * cum / total
        tooltip = (
            f"{node.name} — {_format_value(cum, value)} cumulative "
            f"({pct:.2f}%), {_format_value(_self_value(node, value), value)} self"
        )
        if node.kind == "operator":
            tooltip += (
                f"; rows_out={node.rows_out} batches={node.batches}"
                f" bytes={node.bytes_scanned}"
                f" gets={node.get_requests}"
                f" (footer {node.footer_gets}, chunk {node.chunk_gets})"
            )
            if node.morsels:
                tooltip += f" morsels={node.morsels}"
        parts.append(
            f'<g><rect x="{x0:.2f}" y="{y}" width="{max(span, 0.5):.2f}" '
            f'height="{ROW_HEIGHT - 1}" fill="{_color(node.name, node.kind)}" '
            f'stroke="#fdf6ec" stroke-width="0.5">'
            f"<title>{escape(tooltip)}</title></rect>"
        )
        if span >= MIN_LABEL_WIDTH:
            label = _fit_label(node.name, span)
            parts.append(
                f'<text x="{x0 + 3:.2f}" y="{y + 13}" '
                f'font-size="{FONT_SIZE}" fill="#1a1a1a">'
                f"{escape(label)}</text>"
            )
        parts.append("</g>")
    if total <= 0:
        parts.append(
            f'<text x="6" y="{HEADER_HEIGHT + 14}" font-size="12" '
            f'fill="#777">(no samples)</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def _self_value(node: "ProfileNode", value: str) -> int:
    from repro.obs.profiler import _node_value

    return _node_value(node, value)


def _fit_label(name: str, span: float) -> str:
    chars = max(1, int((span - 6) / (FONT_SIZE * 0.62)))
    if len(name) <= chars:
        return name
    if chars <= 2:
        return name[:chars]
    return name[: chars - 2] + "…"
