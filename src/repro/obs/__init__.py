"""``repro.obs`` — end-to-end query observability.

Three pieces, all simulation-clock-aware and deterministic:

* :mod:`repro.obs.tracer` — per-query span trees
  (``submit → queue → dispatch → plan → scan → merge → bill``) with
  venue/cache/price attributes, exportable as byte-stable JSON timelines.
* :mod:`repro.obs.metrics` — a Prometheus-style registry (counters,
  gauges, histograms) fed by hooks in the query server, coordinator, VM
  cluster, CF service, and storage layers.
* :mod:`repro.obs.explain` — the EXPLAIN ANALYZE renderer over the
  executor's per-operator profiles.

:class:`Instrumentation` bundles a tracer and a registry and is what
components thread through their constructors.  The default everywhere is
:meth:`Instrumentation.disabled` — inert tracer, inert registry — so an
un-instrumented run pays only a no-op call per would-be event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.explain import render_analyzed_plan
from repro.obs.flamegraph import render_flamegraph_svg
from repro.obs.profiler import (
    ProfileNode,
    QueryProfile,
    build_query_profile,
    render_folded,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.obs.slo import NoopSloTracker, SloObjective, SloRecord, SloTracker
from repro.obs.tracer import NOOP_SPAN, NOOP_TRACER, ROOT, NoopTracer, Span, Tracer

__all__ = [
    "Counter",
    "ROOT",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NoopSloTracker",
    "NoopTracer",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "ProfileNode",
    "QueryProfile",
    "SloObjective",
    "SloRecord",
    "SloTracker",
    "Span",
    "Tracer",
    "build_query_profile",
    "render_analyzed_plan",
    "render_flamegraph_svg",
    "render_folded",
]


@dataclass
class Instrumentation:
    """A tracer + metrics registry + SLO tracker threaded through the
    system.  All three default to their inert twins."""

    tracer: Tracer = field(default_factory=NoopTracer)
    metrics: MetricsRegistry = field(default_factory=NoopMetricsRegistry)
    slo: SloTracker = field(default_factory=NoopSloTracker)

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled or self.slo.enabled

    @staticmethod
    def disabled() -> "Instrumentation":
        """The no-op default: nothing recorded, near-zero overhead."""
        return Instrumentation(NoopTracer(), NoopMetricsRegistry(), NoopSloTracker())

    @staticmethod
    def create(
        clock: Callable[[], float] | None = None,
        objectives: list[SloObjective] | None = None,
    ) -> "Instrumentation":
        """A live triple; pass the simulator's clock (``lambda: sim.now``)
        so span timestamps are virtual and reproducible."""
        return Instrumentation(
            Tracer(clock), MetricsRegistry(), SloTracker(objectives)
        )
