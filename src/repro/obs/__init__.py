"""``repro.obs`` — end-to-end query observability.

Three pieces, all simulation-clock-aware and deterministic:

* :mod:`repro.obs.tracer` — per-query span trees
  (``submit → queue → dispatch → plan → scan → merge → bill``) with
  venue/cache/price attributes, exportable as byte-stable JSON timelines.
* :mod:`repro.obs.metrics` — a Prometheus-style registry (counters,
  gauges, histograms) fed by hooks in the query server, coordinator, VM
  cluster, CF service, and storage layers.
* :mod:`repro.obs.explain` — the EXPLAIN ANALYZE renderer over the
  executor's per-operator profiles.

:class:`Instrumentation` bundles a tracer and a registry and is what
components thread through their constructors.  The default everywhere is
:meth:`Instrumentation.disabled` — inert tracer, inert registry — so an
un-instrumented run pays only a no-op call per would-be event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.obs.activity import (
    ActivityRegistry,
    GuardDecision,
    GuardPolicy,
    NoopActivityRegistry,
    ProjectionGuard,
    ProjectionRecord,
)
from repro.obs.explain import render_analyzed_plan
from repro.obs.flamegraph import render_flamegraph_svg
from repro.obs.profiler import (
    ProfileNode,
    QueryProfile,
    build_query_profile,
    render_folded,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.obs.fingerprint import Fingerprint, fingerprint, plan_shape_hash
from repro.obs.journal import CapturePolicy, NoopQueryJournal, QueryJournal
from repro.obs.ledger import MeterEvent, MeterLedger, NoopMeterLedger
from repro.obs.spend import NoopSpendAccountant, SpendAccountant
from repro.obs.slo import NoopSloTracker, SloObjective, SloRecord, SloTracker
from repro.obs.statements import NoopStatementStore, StatementStore
from repro.obs.tracer import NOOP_SPAN, NOOP_TRACER, ROOT, NoopTracer, Span, Tracer

__all__ = [
    "ActivityRegistry",
    "CapturePolicy",
    "Counter",
    "ROOT",
    "Fingerprint",
    "Gauge",
    "GuardDecision",
    "GuardPolicy",
    "Histogram",
    "Instrumentation",
    "MeterEvent",
    "MeterLedger",
    "MetricsRegistry",
    "NoopActivityRegistry",
    "NoopMeterLedger",
    "NoopMetricsRegistry",
    "NoopQueryJournal",
    "NoopSloTracker",
    "NoopSpendAccountant",
    "NoopStatementStore",
    "NoopTracer",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "ProfileNode",
    "ProjectionGuard",
    "ProjectionRecord",
    "QueryJournal",
    "QueryProfile",
    "SloObjective",
    "SloRecord",
    "SloTracker",
    "Span",
    "SpendAccountant",
    "StatementStore",
    "Tracer",
    "build_query_profile",
    "fingerprint",
    "plan_shape_hash",
    "render_analyzed_plan",
    "render_flamegraph_svg",
    "render_folded",
]


@dataclass
class Instrumentation:
    """A tracer + metrics registry + SLO tracker + statement store +
    query journal + metering ledger + spend accountant + live activity
    registry threaded through the system.  All eight default to their
    inert twins."""

    tracer: Tracer = field(default_factory=NoopTracer)
    metrics: MetricsRegistry = field(default_factory=NoopMetricsRegistry)
    slo: SloTracker = field(default_factory=NoopSloTracker)
    statements: StatementStore = field(default_factory=NoopStatementStore)
    journal: QueryJournal = field(default_factory=NoopQueryJournal)
    ledger: MeterLedger = field(default_factory=NoopMeterLedger)
    spend: SpendAccountant = field(default_factory=NoopSpendAccountant)
    activity: ActivityRegistry = field(default_factory=NoopActivityRegistry)

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.slo.enabled
            or self.statements.enabled
            or self.journal.enabled
            or self.ledger.enabled
        )

    @staticmethod
    def disabled() -> "Instrumentation":
        """The no-op default: nothing recorded, near-zero overhead."""
        return Instrumentation(
            NoopTracer(),
            NoopMetricsRegistry(),
            NoopSloTracker(),
            NoopStatementStore(),
            NoopQueryJournal(),
            NoopMeterLedger(),
            NoopSpendAccountant(),
            NoopActivityRegistry(),
        )

    @staticmethod
    def create(
        clock: Callable[[], float] | None = None,
        objectives: list[SloObjective] | None = None,
        capture: CapturePolicy | None = None,
        budgets: dict[str, float] | None = None,
    ) -> "Instrumentation":
        """A live bundle; pass the simulator's clock (``lambda: sim.now``)
        so span/journal timestamps are virtual and reproducible.
        ``capture`` overrides the journal's slow-query capture policy;
        ``budgets`` seeds the spend accountant's soft per-tenant budgets
        (tenant → dollars)."""
        ledger = MeterLedger(clock)
        spend = SpendAccountant(budgets)
        ledger.add_listener(spend.on_event)
        statements = StatementStore()
        activity = ActivityRegistry(clock)
        activity.bind(statements=statements)
        metrics = MetricsRegistry()
        activity.bind_metrics(metrics)
        return Instrumentation(
            Tracer(clock),
            metrics,
            SloTracker(objectives),
            statements,
            QueryJournal(clock, capture),
            ledger,
            spend,
            activity,
        )
