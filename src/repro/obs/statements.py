"""Per-statement workload statistics (``pg_stat_statements`` flavour).

The :class:`StatementStore` aggregates every completed query under its
:mod:`~repro.obs.fingerprint` × service level: call counts, rows,
virtual execution time (totals plus a :class:`~repro.obs.metrics.Histogram`
per entry), bytes scanned, cache traffic, the footer-vs-chunk GET split,
and the billed price decomposed by resource.  The dollar decomposition
reuses the profiler's integer-nanodollar largest-remainder split over
the cost model's attribution, so per-entry resource dollars sum exactly
to the entry's billed total — the same invariant the flame graphs hold.

Everything is driven by the virtual clock and integer counters, so the
top-K renderings and the JSON export are byte-deterministic across runs
and invariant to ``REPRO_WORKERS``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.obs.metrics import Histogram
from repro.obs.profiler import NANOS_PER_DOLLAR, split_attribution_nanodollars

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.fingerprint import Fingerprint
    from repro.turbo.cost import CostAttribution

#: Virtual execution-time buckets: sub-second single-table scans up to
#: multi-minute held/heavy queries.
STATEMENT_TIME_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 30.0, 120.0, 600.0)

#: Render/sort dimensions accepted by :meth:`StatementStore.top`.
TOP_DIMENSIONS = ("time", "dollars", "calls")


@dataclass
class StatementEntry:
    """Aggregates for one fingerprint at one service level (per tenant)."""

    fingerprint: str
    level: str
    statement: str  # normalized text (literals stripped)
    tenant: str = "default"
    parsed: bool = True
    plan_shape: str | None = None
    calls: int = 0
    errors: int = 0
    rows_produced: int = 0
    rows_scanned: int = 0
    time_s: float = 0.0
    pending_s: float = 0.0
    nanodollars: int = 0
    bandwidth_nanodollars: int = 0
    compute_nanodollars: int = 0
    request_nanodollars: int = 0
    fixed_nanodollars: int = 0
    bytes_scanned: int = 0
    get_requests: int = 0
    footer_gets: int = 0
    chunk_gets: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    time_histogram: Histogram = field(
        default_factory=lambda: Histogram(
            "statement_time_seconds", buckets=STATEMENT_TIME_BUCKETS
        ),
        repr=False,
    )

    @property
    def dollars(self) -> float:
        return self.nanodollars / NANOS_PER_DOLLAR

    @property
    def mean_time_s(self) -> float:
        return self.time_s / self.calls if self.calls else 0.0

    @property
    def cache_hit_ratio(self) -> float | None:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else None


def _split_nanodollars(
    billed: float, attribution: "CostAttribution | None"
) -> tuple[int, list[int]]:
    """Billed $ → integer nanodollars split by resource, exactly.

    Delegates to the profiler's shared splitter so the statement store,
    the flame graphs, and the metering ledger can never disagree by even
    one nanodollar.
    """
    return split_attribution_nanodollars(billed, attribution)


class StatementStore:
    """Fingerprint × level × tenant aggregation with deterministic
    exports."""

    enabled: bool = True

    def __init__(
        self, time_buckets: Iterable[float] = STATEMENT_TIME_BUCKETS
    ) -> None:
        self._time_buckets = tuple(time_buckets)
        self._entries: dict[tuple[str, str, str], StatementEntry] = {}

    def record(
        self,
        fingerprint: "Fingerprint",
        level: str,
        *,
        time_s: float = 0.0,
        pending_s: float = 0.0,
        billed: float = 0.0,
        attribution: "CostAttribution | None" = None,
        stats=None,
        plan_shape: str | None = None,
        error: bool = False,
        tenant: str = "default",
    ) -> StatementEntry:
        """Fold one completed query into its entry.

        ``stats`` is the execution's :class:`~repro.engine.executor.QueryStats`
        (or None for failures that never produced one); ``attribution``
        the cost model's resource split of ``billed``; ``tenant`` the
        submitting tenant (one entry per fingerprint × level × tenant).
        """
        key = (fingerprint.id, level, tenant)
        entry = self._entries.get(key)
        if entry is None:
            entry = StatementEntry(
                fingerprint=fingerprint.id,
                level=level,
                statement=fingerprint.normalized,
                tenant=tenant,
                parsed=fingerprint.parsed,
                time_histogram=Histogram(
                    "statement_time_seconds", buckets=self._time_buckets
                ),
            )
            self._entries[key] = entry
        entry.calls += 1
        if error:
            entry.errors += 1
        if plan_shape is not None:
            entry.plan_shape = plan_shape
        entry.time_s += time_s
        entry.pending_s += pending_s
        entry.time_histogram.observe(time_s)
        billed_nano, pools = _split_nanodollars(billed, attribution)
        entry.nanodollars += billed_nano
        entry.bandwidth_nanodollars += pools[0]
        entry.compute_nanodollars += pools[1]
        entry.request_nanodollars += pools[2]
        entry.fixed_nanodollars += pools[3]
        if stats is not None:
            entry.rows_produced += stats.rows_produced
            entry.rows_scanned += stats.rows_scanned
            entry.bytes_scanned += stats.bytes_scanned
            entry.get_requests += stats.get_requests
            entry.footer_gets += stats.footer_gets
            entry.chunk_gets += stats.chunk_gets
            entry.cache_hits += stats.cache_hits
            entry.cache_misses += stats.cache_misses
        return entry

    # -- queries ------------------------------------------------------------

    def entries(self) -> list[StatementEntry]:
        """All entries in (fingerprint, level, tenant) order."""
        return [self._entries[key] for key in sorted(self._entries)]

    def entry(
        self, fingerprint_id: str, level: str, tenant: str = "default"
    ) -> StatementEntry | None:
        return self._entries.get((fingerprint_id, level, tenant))

    def top(
        self, k: int = 10, by: str = "dollars", level: str | None = None
    ) -> list[StatementEntry]:
        """Top-``k`` entries by ``time``/``dollars``/``calls``, ties broken
        by (fingerprint, level, tenant) so the ranking is total and
        deterministic."""
        if by == "time":
            value = lambda e: e.time_s  # noqa: E731
        elif by == "dollars":
            value = lambda e: e.nanodollars  # noqa: E731
        elif by == "calls":
            value = lambda e: e.calls  # noqa: E731
        else:
            raise ValueError(
                f"unknown dimension {by!r}; expected one of {TOP_DIMENSIONS}"
            )
        pool = [
            entry
            for entry in self._entries.values()
            if level is None or entry.level == level
        ]
        pool.sort(
            key=lambda e: (-value(e), e.fingerprint, e.level, e.tenant)
        )
        return pool[:k]

    # -- exports ------------------------------------------------------------

    def render_top(self, k: int = 10, by: str = "dollars") -> str:
        """A fixed-width top-K table (one of the operator CLI surfaces)."""
        header = {
            "time": "TOP STATEMENTS BY VIRTUAL TIME",
            "dollars": "TOP STATEMENTS BY BILLED $",
            "calls": "TOP STATEMENTS BY CALLS",
        }[by]
        lines = [header, ""]
        lines.append(
            f"{'fingerprint':<14} {'level':<12} {'calls':>6} {'errs':>5} "
            f"{'time_s':>12} {'billed_$':>14} {'GB':>9} {'hit%':>6}  statement"
        )
        for entry in self.top(k, by):
            ratio = entry.cache_hit_ratio
            hit = f"{ratio * 100:5.1f}" if ratio is not None else "    -"
            statement = entry.statement
            if len(statement) > 60:
                statement = statement[:57] + "..."
            lines.append(
                f"{entry.fingerprint:<14} {entry.level:<12} "
                f"{entry.calls:>6} {entry.errors:>5} "
                f"{entry.time_s:>12.6f} {entry.dollars:>14.9f} "
                f"{entry.bytes_scanned / 1e9:>9.3f} {hit:>6}  {statement}"
            )
        if not self._entries:
            lines.append("(no statements recorded)")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> list[dict]:
        """Entries as JSON-ready dicts, (fingerprint, level, tenant)-
        sorted."""
        out: list[dict] = []
        for entry in self.entries():
            hist = entry.time_histogram
            quantiles = {
                f"p{int(q * 100)}_s": hist.quantile(q)
                for q in (0.5, 0.95, 0.99)
            }
            out.append(
                {
                    "fingerprint": entry.fingerprint,
                    "level": entry.level,
                    "tenant": entry.tenant,
                    "statement": entry.statement,
                    "parsed": entry.parsed,
                    "plan_shape": entry.plan_shape,
                    "calls": entry.calls,
                    "errors": entry.errors,
                    "rows": {
                        "produced": entry.rows_produced,
                        "scanned": entry.rows_scanned,
                    },
                    "time": {
                        "total_s": round(entry.time_s, 9),
                        "mean_s": round(entry.mean_time_s, 9),
                        "pending_total_s": round(entry.pending_s, 9),
                        **{
                            name: (
                                round(value, 9) if value is not None else None
                            )
                            for name, value in quantiles.items()
                        },
                    },
                    "nanodollars": {
                        "billed": entry.nanodollars,
                        "bandwidth": entry.bandwidth_nanodollars,
                        "compute": entry.compute_nanodollars,
                        "requests": entry.request_nanodollars,
                        "fixed": entry.fixed_nanodollars,
                    },
                    "io": {
                        "bytes_scanned": entry.bytes_scanned,
                        "get_requests": entry.get_requests,
                        "footer_gets": entry.footer_gets,
                        "chunk_gets": entry.chunk_gets,
                        "cache_hits": entry.cache_hits,
                        "cache_misses": entry.cache_misses,
                        "cache_hit_ratio": (
                            round(entry.cache_hit_ratio, 6)
                            if entry.cache_hit_ratio is not None
                            else None
                        ),
                    },
                }
            )
        return out

    def export_json(self) -> str:
        """Byte-stable JSON export of the whole store."""
        return (
            json.dumps(
                {"statements": self.snapshot()}, indent=2, sort_keys=True
            )
            + "\n"
        )


class NoopStatementStore(StatementStore):
    """Inert twin: swallows records, exports nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def record(self, fingerprint, level, **kwargs):  # type: ignore[override]
        return None

    def render_top(self, k: int = 10, by: str = "dollars") -> str:
        return ""

    def export_json(self) -> str:
        return ""
