"""Query fingerprints: a stable identity for a statement *shape*.

Fleet-scale statistics only become readable when the thousands of
concrete queries an application issues collapse into the handful of
statement shapes it actually runs — ``pg_stat_statements`` semantics.
:func:`fingerprint` normalizes a query by parsing it and stripping every
literal from the AST (constants become ``?``, LIMIT/OFFSET counts become
``?``), then hashes the re-rendered SQL.  Two queries that differ only in
their constants therefore share a fingerprint; queries with different
structure never do.

Unparseable input (NL text sent to the SQL endpoint, unsupported
syntax) falls back to a lexical normalization — quoted strings and
numeric tokens replaced, whitespace collapsed — so *every* submission
gets a fingerprint and the statement store never loses a call.

:func:`plan_shape_hash` is the complementary physical identity: a hash
over the optimized plan's preorder node kinds and scanned tables, but
not its literals (zone-map ranges, residuals).  Two fingerprints that
map to different plan shapes over time are how an operator spots a plan
regression; the statement store records both.
"""

from __future__ import annotations

import dataclasses
import hashlib
import re
from dataclasses import dataclass

from repro.engine.plan import PlanNode, Scan
from repro.engine.sql import ast as sql_ast

#: Hex digits kept from the sha256 — short enough for dashboards, long
#: enough that workload-scale collisions are implausible.
FINGERPRINT_DIGITS = 12


class _Placeholder(sql_ast.Literal):
    """A literal whose rendering is always ``?`` (the stripped constant)."""

    def to_sql(self) -> str:
        return "?"


class _Count(int):
    """LIMIT/OFFSET are plain ints in the AST; this subclass renders as
    ``?`` wherever ``to_sql`` string-formats it, while still comparing as
    an int so frozen-dataclass reconstruction stays valid."""

    def __str__(self) -> str:
        return "?"

    def __format__(self, spec: str) -> str:
        return "?"


_PLACEHOLDER = _Placeholder(None)
_COUNT_FIELDS = ("limit", "offset")


def _strip_value(value: object) -> object:
    if isinstance(value, tuple):
        return tuple(_strip_value(item) for item in value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _strip_node(value)
    return value


def _strip_node(node: object) -> object:
    """Rebuild ``node`` with every literal replaced by a placeholder.

    Generic over the frozen AST dataclasses: recurses through fields and
    tuples, so new node kinds normalize correctly without registration.
    """
    if isinstance(node, sql_ast.Literal):
        return _PLACEHOLDER
    changes: dict[str, object] = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if (
            field.name in _COUNT_FIELDS
            and isinstance(value, int)
            and not isinstance(value, bool)
        ):
            changes[field.name] = _Count(value)
            continue
        stripped = _strip_value(value)
        if stripped is not value:
            changes[field.name] = stripped
    return dataclasses.replace(node, **changes) if changes else node


_STRING_RE = re.compile(r"'(?:[^']|'')*'")
_NUMBER_RE = re.compile(r"\b\d+(?:\.\d+)?\b")
_WS_RE = re.compile(r"\s+")


def _normalize_text(sql: str) -> str:
    """Lexical fallback for SQL the parser rejects: strings first (so
    digits inside them don't double-strip), then bare numbers, then
    whitespace runs."""
    text = _STRING_RE.sub("?", sql)
    text = _NUMBER_RE.sub("?", text)
    return _WS_RE.sub(" ", text).strip()


def _digest(normalized: str) -> str:
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[
        :FINGERPRINT_DIGITS
    ]


@dataclass(frozen=True)
class Fingerprint:
    """One statement shape: short id + the normalized text it hashes."""

    id: str
    normalized: str
    #: False when the AST normalization fell back to the lexical pass.
    parsed: bool


def fingerprint(sql: str) -> Fingerprint:
    """Fingerprint one query text (never raises)."""
    from repro.errors import PixelsError
    from repro.engine.sql.parser import parse_sql

    try:
        statement = parse_sql(sql)
    except PixelsError:
        normalized = _normalize_text(sql)
        return Fingerprint(_digest(normalized), normalized, parsed=False)
    normalized = _strip_node(statement).to_sql()
    return Fingerprint(_digest(normalized), normalized, parsed=True)


def _shape_lines(node: PlanNode, depth: int) -> list[str]:
    label = type(node).__name__
    if isinstance(node, Scan):
        label += f" {node.schema_name}.{node.table.name}"
    lines = ["  " * depth + label]
    for child in node.children():
        lines.extend(_shape_lines(child, depth + 1))
    return lines


def plan_shape(plan: PlanNode) -> str:
    """The plan's shape text: indented preorder node kinds, with scanned
    tables (but no literals — ranges and residuals vary per call)."""
    return "\n".join(_shape_lines(plan, 0))


def plan_shape_hash(plan: PlanNode) -> str:
    """Short hash of :func:`plan_shape` — the statement store's physical
    identity next to the textual fingerprint."""
    return hashlib.sha256(plan_shape(plan).encode("utf-8")).hexdigest()[
        :FINGERPRINT_DIGITS
    ]
