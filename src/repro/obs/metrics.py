"""A small Prometheus-style metrics registry.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — with optional labels, owned by a
:class:`MetricsRegistry` that renders the Prometheus text exposition
format.  Components create instruments once at construction
(``registry.counter(...)`` is get-or-create) and update them on the hot
path; *derived* series that mirror state held elsewhere (queue depths,
buffer-pool occupancy, the object store's cumulative counters) are
refreshed lazily by collector callbacks that run just before each
render, so they cost nothing between scrapes.

:class:`NoopMetricsRegistry` is the disabled twin: its instruments
swallow updates and its exposition is empty, so instrumented components
pay one no-op call per update when observability is off.
"""

from __future__ import annotations

from typing import Callable, Iterable

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> _LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus exposition escaping: backslash, double-quote, newline.

    Without this, a label value containing ``"`` or a newline corrupts
    the whole exposition line; with it the text format round-trips."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """HELP-line escaping per the exposition format: ``\\`` and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = key + extra
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in items
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _CardinalityGuard:
    """Per-instrument cap on distinct label sets.

    High-cardinality labels (per-fingerprint, per-query) could otherwise
    grow a registry without bound; with the guard, updates to *existing*
    series always land, but a new label set beyond ``max_series`` is
    dropped and reported through the registry's drop counter instead.
    Both attributes are stamped by :meth:`MetricsRegistry._get_or_create`;
    stand-alone instruments stay uncapped.
    """

    max_series: int | None = None
    _on_drop: Callable[[str], None] | None = None

    name: str  # provided by the concrete instrument

    def _admit(self, store: dict, key: _LabelKey) -> bool:
        if key in store:
            return True
        if self.max_series is not None and len(store) >= self.max_series:
            if self._on_drop is not None:
                self._on_drop(self.name)
            return False
        return True


class Counter(_CardinalityGuard):
    """Monotonically increasing value (optionally per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[_LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        if not self._admit(self._values, key):
            return
        self._values[key] = self._values.get(key, 0.0) + value

    def set_total(self, value: float, **labels: object) -> None:
        """Overwrite the cumulative total — for collector callbacks that
        mirror a counter maintained elsewhere (e.g. ``StorageMetrics``)."""
        key = _label_key(labels)
        if not self._admit(self._values, key):
            return
        self._values[key] = value

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[str, _LabelKey, float]]:
        return [(self.name, key, value) for key, value in sorted(self._values.items())]


class Gauge(_CardinalityGuard):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        if not self._admit(self._values, key):
            return
        self._values[key] = value

    def inc(self, value: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        if not self._admit(self._values, key):
            return
        self._values[key] = self._values.get(key, 0.0) + value

    def dec(self, value: float = 1.0, **labels: object) -> None:
        self.inc(-value, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[tuple[str, _LabelKey, float]]:
        return [(self.name, key, value) for key, value in sorted(self._values.items())]


#: Default histogram buckets: seconds-flavoured, spanning the sub-second
#: object-store scale up to the multi-minute pending times of held queries.
DEFAULT_BUCKETS = (
    0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
)


class Histogram(_CardinalityGuard):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._bucket_counts: dict[_LabelKey, list[int]] = {}
        self._sums: dict[_LabelKey, float] = {}
        self._counts: dict[_LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        if not self._admit(self._counts, key):
            return
        counts = self._bucket_counts.setdefault(key, [0] * len(self.buckets))
        for index, upper in enumerate(self.buckets):
            if value <= upper:
                counts[index] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._counts[key] = self._counts.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        return self._counts.get(_label_key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def quantile(self, q: float, **labels: object) -> float | None:
        """Bucket-based quantile estimate (``histogram_quantile`` rules).

        Edge-case semantics, each pinned by a regression test:

        * empty series (or a never-observed label set) → ``None``;
        * ``q=0.0`` → the lower edge of the first occupied bucket (0 when
          that is the first bucket and its upper bound is positive);
        * ``q=1.0`` → the upper bound of the last occupied finite bucket;
        * a rank at or beyond the overflow (``+Inf``) bucket — including
          the single-finite-bucket case where every observation
          overflowed — clamps to the largest finite bucket bound instead
          of interpolating past it;
        * otherwise, linear interpolation within the bucket the rank
          falls in (the first bucket interpolates from 0 when its upper
          bound is positive, from its own bound when not).

        These are exactly Prometheus's conventions, so dashboard
        percentiles match what a scrape of the rendered buckets would
        show.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        key = _label_key(labels)
        count = self._counts.get(key, 0)
        if count == 0:
            return None
        counts = self._bucket_counts[key]
        rank = q * count
        previous = 0
        for index, upper in enumerate(self.buckets):
            cumulative = counts[index]
            in_bucket = cumulative - previous
            # Skip while the rank lies past this bucket, and skip empty
            # buckets outright: a rank of 0 must land in the first
            # *occupied* bucket, and interpolating inside an empty bucket
            # would divide by zero.
            if cumulative == 0 or cumulative < rank or in_bucket == 0:
                previous = cumulative
                continue
            if index > 0:
                lower = self.buckets[index - 1]
            else:
                lower = min(0.0, upper)
            fraction = max(0.0, (rank - previous) / in_bucket)
            return lower + (upper - lower) * fraction
        # The rank falls in the +Inf overflow bucket (q=1.0 with
        # overflowed observations, or every observation overflowed).
        return self.buckets[-1]

    def samples(self) -> list[tuple[str, _LabelKey, float]]:
        out: list[tuple[str, _LabelKey, float]] = []
        for key in sorted(self._counts):
            cumulative = 0
            for index, upper in enumerate(self.buckets):
                cumulative = self._bucket_counts[key][index]
                out.append(
                    (
                        f"{self.name}_bucket",
                        key + (("le", _format_value(upper)),),
                        float(cumulative),
                    )
                )
            out.append(
                (f"{self.name}_bucket", key + (("le", "+Inf"),), float(self._counts[key]))
            )
            out.append((f"{self.name}_sum", key, self._sums[key]))
            out.append((f"{self.name}_count", key, float(self._counts[key])))
        return out


#: Default per-instrument cap on distinct label sets.  Generous for the
#: hand-labelled series the system emits (levels × venues × kinds), tight
#: enough that per-fingerprint or per-query labels cannot grow a registry
#: without bound.
DEFAULT_MAX_LABEL_SETS = 256

#: Counter the registry increments (labelled by instrument name) when the
#: cardinality guard drops a new series.
DROPPED_SERIES_COUNTER = "pixels_metrics_dropped_series_total"

#: Scheduler-front-end instrument names (created by the query server;
#: named here so dashboards, alert rules, and tests share one spelling).
#: The per-tenant depth gauge is labelled ``{tenant, level}`` and leans
#: on the cardinality guard above — a fleet of unbounded tenants cannot
#: grow the registry past ``DEFAULT_MAX_LABEL_SETS`` series.
SCHEDULER_QUEUE_DEPTH_METRIC = "pixels_scheduler_queue_depth"
ADMISSION_REJECTIONS_METRIC = "pixels_admission_rejections_total"
ADMISSION_DOWNGRADES_METRIC = "pixels_admission_downgrades_total"

#: Live-activity instrument names (created by the activity registry's
#: metrics binding and the query server's guard wiring).  The per-state
#: gauge has a fixed label set; the per-tenant projected-spend gauge and
#: the guard decision counter ride behind the cardinality guard.
ACTIVITY_QUERIES_METRIC = "pixels_activity_queries"
ACTIVITY_PROJECTED_METRIC = "pixels_activity_projected_dollars"
GUARD_DECISIONS_METRIC = "pixels_guard_decisions_total"


class MetricsRegistry:
    """Instrument factory + Prometheus text exposition."""

    enabled: bool = True

    def __init__(
        self, max_label_sets: int | None = DEFAULT_MAX_LABEL_SETS
    ) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Callable[[], None]] = []
        self.max_label_sets = max_label_sets

    def _record_drop(self, name: str) -> None:
        dropped = self._instruments.get(DROPPED_SERIES_COUNTER)
        if dropped is None:
            # Created on first drop so a clean registry's exposition stays
            # noise-free; itself uncapped (one series per instrument name).
            dropped = Counter(
                DROPPED_SERIES_COUNTER,
                "Series updates dropped by the label-cardinality guard",
            )
            self._instruments[DROPPED_SERIES_COUNTER] = dropped
        dropped.inc(metric=name)

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is not None:
            if not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument
        instrument = cls(name, help, **kwargs)
        instrument.max_series = self.max_label_sets
        instrument._on_drop = self._record_drop
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def add_collector(self, collect: Callable[[], None]) -> None:
        """Register a callback run before every render to refresh derived
        series from live component state."""
        self._collectors.append(collect)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._instruments.get(name)

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """Every registered instrument, sorted by name — the stable
        iteration order the scrape loop and the renderer share."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def collect(self) -> None:
        for collector in self._collectors:
            collector()

    def render(self) -> str:
        """The Prometheus text exposition of every instrument."""
        self.collect()
        lines: list[str] = []
        for instrument in self.instruments():
            name = instrument.name
            if instrument.help:
                lines.append(f"# HELP {name} {_escape_help(instrument.help)}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            for sample_name, key, value in instrument.samples():
                lines.append(
                    f"{sample_name}{_render_labels(key)} {_format_value(value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


class _NoopInstrument:
    """Swallows every update; reads back as empty/zero."""

    kind = "noop"
    name = ""
    help = ""
    buckets: tuple[float, ...] = ()

    def inc(self, value: float = 1.0, **labels: object) -> None:
        return None

    def dec(self, value: float = 1.0, **labels: object) -> None:
        return None

    def set(self, value: float, **labels: object) -> None:
        return None

    def set_total(self, value: float, **labels: object) -> None:
        return None

    def observe(self, value: float, **labels: object) -> None:
        return None

    def value(self, **labels: object) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def quantile(self, q: float, **labels: object) -> float | None:
        return None

    def samples(self) -> list:
        return []


#: Shared inert instrument returned by every NoopMetricsRegistry factory.
NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetricsRegistry(MetricsRegistry):
    """Registry that records nothing and renders an empty exposition."""

    enabled = False

    def counter(self, name: str, help: str = "") -> Counter:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return NOOP_INSTRUMENT  # type: ignore[return-value]

    def add_collector(self, collect: Callable[[], None]) -> None:
        return None

    def render(self) -> str:
        return ""
