"""Per-tenant spend accounting over the metering ledger.

The :class:`SpendAccountant` subscribes to the :class:`~repro.obs.ledger.
MeterLedger` and maintains rolling per-tenant × per-service-level spend
aggregates in integer nanodollars, the provider-side spend per venue,
and soft tenant budgets.  Budgets are *soft*: crossing one never blocks
a query — it raises an alert through the existing alert engine instead
(see :func:`budget_rules`), which is the paper-consistent behaviour for
an analytics service that bills per TB rather than pre-authorizing.

The JSON report is integer/virtual-clock data only, so it is
byte-identical across runs and invariant to ``REPRO_WORKERS``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.obs.ledger import MeterEvent
from repro.obs.profiler import NANOS_PER_DOLLAR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.alerts import ThresholdRule

#: The metric the query server increments per completed query; budget
#: threshold rules select it by tenant label (the label set sits under
#: the registry's cardinality guard like every other series).
TENANT_BILLED_METRIC = "pixels_tenant_billed_dollars_total"


def budget_rules(budgets: dict[str, float]) -> "list[ThresholdRule]":
    """Soft-budget alert rules: one ThresholdRule per tenant, firing on
    the scrape cadence once the tenant's cumulative billed dollars
    exceed the budget.  Append these to the alert engine's rule set."""
    from repro.obs.alerts import ThresholdRule, labels_of

    return [
        ThresholdRule(
            name=f"TenantBudget:{tenant}",
            metric=TENANT_BILLED_METRIC,
            threshold=float(limit),
            labels=labels_of(tenant=tenant),
        )
        for tenant, limit in sorted(budgets.items())
    ]


class SpendAccountant:
    """Rolling per-tenant/per-level spend over ledger events."""

    enabled: bool = True

    def __init__(self, budgets: dict[str, float] | None = None) -> None:
        #: (tenant, level) -> net nanodollars (voids subtract).
        self._totals: dict[tuple[str, str], int] = {}
        #: per-tenant (ts, nanodollars) history for windowed queries.
        self._history: dict[str, list[tuple[float, int]]] = {}
        self._provider: dict[str, int] = {}  # venue -> nanodollars
        self._budgets: dict[str, float] = dict(budgets or {})
        self._events = 0
        self._voids = 0

    # -- ledger feed ---------------------------------------------------------

    def on_event(self, event: MeterEvent) -> None:
        """Ledger listener: fold one meter event into the aggregates."""
        self._events += 1
        if event.kind == "void":
            self._voids += 1
        if event.account == "provider":
            venue = event.venue
            self._provider[venue] = (
                self._provider.get(venue, 0) + event.nanodollars
            )
            return
        key = (event.tenant, event.level)
        self._totals[key] = self._totals.get(key, 0) + event.nanodollars
        self._history.setdefault(event.tenant, []).append(
            (event.ts, event.nanodollars)
        )

    # -- budgets -------------------------------------------------------------

    def set_budget(self, tenant: str, dollars: float) -> None:
        self._budgets[tenant] = float(dollars)

    def budgets(self) -> dict[str, float]:
        return dict(self._budgets)

    def over_budget(self) -> list[str]:
        """Tenants whose net spend exceeds their soft budget, sorted."""
        return sorted(
            tenant
            for tenant, limit in self._budgets.items()
            if self.tenant_nanodollars(tenant)
            > round(limit * NANOS_PER_DOLLAR)
        )

    # -- queries -------------------------------------------------------------

    def tenants(self) -> list[str]:
        return sorted({tenant for tenant, _ in self._totals})

    def tenant_nanodollars(self, tenant: str) -> int:
        return sum(
            nanos
            for (t, _), nanos in self._totals.items()
            if t == tenant
        )

    def by_level(self, tenant: str) -> dict[str, int]:
        """Level → net nanodollars for one tenant, level-sorted."""
        out = {
            level: nanos
            for (t, level), nanos in self._totals.items()
            if t == tenant
        }
        return {level: out[level] for level in sorted(out)}

    def spent_since(self, tenant: str, since_ts: float) -> int:
        """Net nanodollars ``tenant`` accrued at or after ``since_ts`` —
        the rolling-window view (virtual clock)."""
        return sum(
            nanos
            for ts, nanos in self._history.get(tenant, [])
            if ts >= since_ts
        )

    def provider_nanodollars(self) -> dict[str, int]:
        """Provider-account spend per venue, venue-sorted."""
        return {venue: self._provider[venue] for venue in sorted(self._provider)}

    # -- export --------------------------------------------------------------

    def report(self) -> dict:
        """The per-tenant spend report (JSON-ready, deterministic)."""
        tenants = []
        for tenant in self.tenants():
            nanos = self.tenant_nanodollars(tenant)
            budget = self._budgets.get(tenant)
            tenants.append(
                {
                    "tenant": tenant,
                    "nanodollars": nanos,
                    "dollars": round(nanos / NANOS_PER_DOLLAR, 12),
                    "by_level": self.by_level(tenant),
                    "budget_dollars": budget,
                    "over_budget": (
                        nanos > round(budget * NANOS_PER_DOLLAR)
                        if budget is not None
                        else False
                    ),
                }
            )
        return {
            "tenants": tenants,
            "provider_nanodollars": self.provider_nanodollars(),
            "events": self._events,
            "voids": self._voids,
        }

    def export_json(self) -> str:
        """Byte-stable JSON export of the spend report."""
        return json.dumps(self.report(), indent=2, sort_keys=True) + "\n"


class NoopSpendAccountant(SpendAccountant):
    """Inert twin: ignores events, exports nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def on_event(self, event) -> None:  # type: ignore[override]
        return None

    def export_json(self) -> str:
        return ""
