"""End-to-end billing reconciliation over the metering ledger.

The reconciler replays a ledger and proves, per query and in **exact
integer arithmetic** (zero tolerance), that the four audit surfaces
agree:

    ledger axis sum == profiler CostAttribution split
                    == billed price
                    == the $/TB logical-bytes basis from storage counters

Any drift is reported as a *named invariant violation*:

* ``ledger.sequence_monotonic`` — seq strictly increasing, virtual
  timestamps non-decreasing (append-only was respected).
* ``ledger.schema`` — unknown axis/account/kind on an event.
* ``ledger.charge_sign`` — a negative charge or a positive void.
* ``ledger.charge_sums_to_bill`` — a query's axis charges must sum to
  the total bill stamped on them (and the stamps must agree).
* ``ledger.bytes_basis`` — the stamped bill must equal
  ``round(bytes × inflation / TB × $/TB × 1e9)`` — the storage-counter
  basis re-derived from the facts carried on the event itself.
* ``ledger.void_nets_zero`` — a voided query must net to exactly $0.
* ``ledger.missing_query`` — a finished, billed query with no ledger
  events (server-side replay only).
* ``ledger.matches_billed_price`` — ledger net == the server's integer
  ``price_nanodollars`` == ``round(price × 1e9)``.
* ``ledger.matches_profiler_attribution`` — per-axis ledger amounts ==
  the profiler's largest-remainder split of the query's
  :class:`~repro.turbo.cost.CostAttribution`.
* ``profiler.tree_sums_to_bill`` — the attribution tree's per-node
  nanodollars sum exactly to the bill.
* ``ledger.failed_query_charged`` — a failed/cancelled query with a
  non-zero net charge.
* ``ledger.total_matches_server`` — Σ per-query nets ==
  ``QueryServer.total_billed_nanodollars()``.

:func:`reconcile_events` needs only the events (the standalone JSONL
replay used by the CLI and the CI gate); :func:`reconcile_server` also
cross-checks the live server, profiler, and statement surfaces.

CLI::

    PYTHONPATH=src python -m repro.obs.reconcile results/c1_ledger.jsonl

exits 1 when any invariant is violated.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.obs.ledger import ACCOUNTS, AXES, KINDS, MeterEvent
from repro.obs.profiler import (
    NANOS_PER_DOLLAR,
    split_attribution_nanodollars,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.query_server import QueryServer

#: Mirrors :data:`repro.turbo.cost.TB` without importing the turbo stack
#: (the standalone replay must not need an engine on the path).
TB = 1024**4


@dataclass(frozen=True)
class InvariantViolation:
    """One named reconciliation failure."""

    invariant: str
    query_id: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "query_id": self.query_id,
            "detail": self.detail,
        }


@dataclass
class ReconciliationReport:
    """The outcome of one ledger replay."""

    events_checked: int = 0
    queries_checked: int = 0
    total_nanodollars: int = 0  # net user-account nanodollars
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, invariant: str, query_id: str, detail: str) -> None:
        self.violations.append(
            InvariantViolation(invariant, query_id, detail)
        )

    def merge(self, other: "ReconciliationReport") -> None:
        self.events_checked += other.events_checked
        self.queries_checked += other.queries_checked
        self.total_nanodollars += other.total_nanodollars
        self.violations.extend(other.violations)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "events_checked": self.events_checked,
            "queries_checked": self.queries_checked,
            "total_nanodollars": self.total_nanodollars,
            "violations": [v.to_dict() for v in self.violations],
        }

    def export_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        """Human-readable summary for CLIs and assertion messages."""
        status = "OK" if self.ok else "FAIL"
        lines = [
            f"reconciliation {status}: {self.queries_checked} queries, "
            f"{self.events_checked} events, net "
            f"{self.total_nanodollars} nanodollars "
            f"(${self.total_nanodollars / NANOS_PER_DOLLAR:.9f})"
        ]
        for violation in self.violations:
            lines.append(
                f"  VIOLATION {violation.invariant} "
                f"query={violation.query_id}: {violation.detail}"
            )
        return "\n".join(lines)


def bytes_basis_nanodollars(
    bytes_scanned: int, data_inflation: float, price_per_tb: float
) -> int:
    """The $/TB logical-bytes billing basis, in integer nanodollars.

    Replicates :meth:`~repro.turbo.cost.CostModel.user_price` exactly —
    same float expression, same rounding — so the reconciler's expected
    value is the bill the cost model would have produced from the same
    storage counters.
    """
    return round(
        ((bytes_scanned * data_inflation) / TB)
        * price_per_tb
        * NANOS_PER_DOLLAR
    )


def reconcile_events(
    events: Iterable[MeterEvent],
) -> ReconciliationReport:
    """Standalone replay: prove the ledger's internal invariants from
    nothing but the events themselves."""
    events = list(events)
    report = ReconciliationReport(events_checked=len(events))

    last_seq = None
    last_ts = None
    for event in events:
        if (
            event.axis not in AXES
            or event.account not in ACCOUNTS
            or event.kind not in KINDS
        ):
            report.add(
                "ledger.schema",
                event.query_id,
                f"seq={event.seq} axis={event.axis!r} "
                f"account={event.account!r} kind={event.kind!r}",
            )
        if last_seq is not None and event.seq <= last_seq:
            report.add(
                "ledger.sequence_monotonic",
                event.query_id,
                f"seq {event.seq} follows {last_seq}",
            )
        if last_ts is not None and event.ts < last_ts:
            report.add(
                "ledger.sequence_monotonic",
                event.query_id,
                f"ts {event.ts} precedes {last_ts} (seq={event.seq})",
            )
        last_seq, last_ts = event.seq, event.ts
        if event.kind == "charge" and event.nanodollars < 0:
            report.add(
                "ledger.charge_sign",
                event.query_id,
                f"negative charge {event.nanodollars} (seq={event.seq})",
            )
        if event.kind == "void" and event.nanodollars > 0:
            report.add(
                "ledger.charge_sign",
                event.query_id,
                f"positive void {event.nanodollars} (seq={event.seq})",
            )

    by_query: dict[str, list[MeterEvent]] = {}
    for event in events:
        if event.account == "user":
            by_query.setdefault(event.query_id, []).append(event)

    for query_id in sorted(by_query):
        query_events = by_query[query_id]
        charges = [e for e in query_events if e.kind == "charge"]
        voided = any(e.kind == "void" for e in query_events)
        net = sum(e.nanodollars for e in query_events)
        report.queries_checked += 1
        report.total_nanodollars += net
        if voided:
            if net != 0:
                report.add(
                    "ledger.void_nets_zero",
                    query_id,
                    f"voided query nets {net} nanodollars, expected 0",
                )
            continue
        if not charges:
            continue
        stamps = {e.billed_nanodollars for e in charges}
        charged = sum(e.nanodollars for e in charges)
        if len(stamps) != 1 or charged != next(iter(stamps)):
            report.add(
                "ledger.charge_sums_to_bill",
                query_id,
                f"axis sum {charged} != stamped bill "
                f"{sorted(stamps)} nanodollars",
            )
            continue
        stamp = next(iter(stamps))
        basis = bytes_basis_nanodollars(
            charges[0].bytes_scanned,
            charges[0].data_inflation,
            charges[0].price_per_tb,
        )
        if basis != stamp:
            report.add(
                "ledger.bytes_basis",
                query_id,
                f"stamped bill {stamp} != bytes basis {basis} "
                f"(bytes={charges[0].bytes_scanned} "
                f"inflation={charges[0].data_inflation} "
                f"rate={charges[0].price_per_tb}$/TB)",
            )
    return report


def reconcile_server(
    server: "QueryServer", replay_events: bool = True
) -> ReconciliationReport:
    """Full cross-check of a live server against its ledger.

    Runs the standalone replay over the server's ledger, then proves the
    per-query equalities against the server's integer bill, the profiler
    attribution tree, and the server-wide total.  Pass
    ``replay_events=False`` when the ledger is shared with other servers
    and the event-level replay already ran (avoids double-counting).
    """
    from repro.errors import PixelsError

    ledger = server.obs.ledger
    report = (
        reconcile_events(ledger.events())
        if replay_events
        else ReconciliationReport()
    )
    server_total = 0
    for record in sorted(server.queries, key=lambda r: r.query_id):
        if not record.status.is_terminal:
            continue
        net = ledger.net_nanodollars(record.query_id)
        server_total += record.price_nanodollars
        execution = record.execution
        finished = (
            execution is not None
            and execution.error is None
            and execution.result is not None
        )
        if not finished:
            if net != 0 or record.price_nanodollars != 0:
                report.add(
                    "ledger.failed_query_charged",
                    record.query_id,
                    f"non-finished query carries net {net} "
                    f"(price_nanodollars={record.price_nanodollars})",
                )
            continue
        events = [
            e
            for e in ledger.events_for(record.query_id)
            if e.account == "user" and e.kind == "charge"
        ]
        if not events:
            report.add(
                "ledger.missing_query",
                record.query_id,
                f"finished query billed "
                f"{record.price_nanodollars} nanodollars has no "
                f"ledger events",
            )
            continue
        expected = round(record.price * NANOS_PER_DOLLAR)
        if not (net == record.price_nanodollars == expected):
            report.add(
                "ledger.matches_billed_price",
                record.query_id,
                f"ledger net {net} != server integer bill "
                f"{record.price_nanodollars} != round(price*1e9) "
                f"{expected}",
            )
        try:
            profile = server.query_profile(record.query_id)
        except PixelsError:
            profile = None
        if profile is not None:
            tree_sum = sum(
                node.self_nanodollars for node in profile.root.walk()
            )
            if not (tree_sum == profile.billed_nanodollars == net):
                report.add(
                    "profiler.tree_sums_to_bill",
                    record.query_id,
                    f"profile tree sums to {tree_sum}, profile bill "
                    f"{profile.billed_nanodollars}, ledger net {net}",
                )
            _, pools = split_attribution_nanodollars(
                record.price, profile.attribution
            )
            by_axis = {axis: 0 for axis in AXES}
            for event in events:
                by_axis[event.axis] += event.nanodollars
            expected_axes = dict(zip(AXES, pools))
            if by_axis != expected_axes:
                report.add(
                    "ledger.matches_profiler_attribution",
                    record.query_id,
                    f"ledger axes {by_axis} != attribution split "
                    f"{expected_axes}",
                )
    total_billed = server.total_billed_nanodollars()
    if server_total != total_billed:
        report.add(
            "ledger.total_matches_server",
            "*",
            f"sum of per-query integer bills {server_total} != "
            f"total_billed_nanodollars() {total_billed}",
        )
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: replay one or more exported ledgers and report violations."""
    import sys

    from repro.obs.ledger import load_events_jsonl

    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            "usage: python -m repro.obs.reconcile <ledger.jsonl> [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for path in argv:
        with open(path, "r", encoding="utf-8") as handle:
            events = load_events_jsonl(handle.read())
        report = reconcile_events(events)
        print(f"{path}: {report.render()}")
        failed = failed or not report.ok
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
