"""The metering ledger: every charge as an immutable meter event.

Billing used to exist only as per-query floats (``ServerQuery.price``)
— an *emergent* number with no audit trail.  The :class:`MeterLedger`
turns it into an **append-only, event-sourced** record: each completed
query emits one :class:`MeterEvent` per resource axis (bandwidth /
compute / requests / fixed) in exact integer nanodollars, stamped with
the tenant, service level, venue, trace/span correlation, the virtual
timestamp, and the $/TB basis facts (logical bytes scanned, inflation
factor, rate) the charge was derived from.  Cancellations **void**
their events — negating entries are appended, nothing is ever deleted —
so the ledger remains a faithful historical record.

The coordinator's provider-side spend (what the operator pays for VM
and CF worker-seconds) lands in the same ledger under
``account="provider"``, giving one audit surface for both kinds of
money the cost model tracks.

Everything is integer arithmetic over virtual-clock timestamps, so
:meth:`MeterLedger.export_jsonl` is byte-identical across runs and
invariant to ``REPRO_WORKERS`` — and :mod:`repro.obs.reconcile` can
replay an exported ledger standalone and re-prove every invariant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Callable, Iterable

#: The resource axes one user charge decomposes into — the same four
#: pools :func:`repro.obs.profiler.split_attribution_nanodollars` emits.
AXES = ("bandwidth", "compute", "requests", "fixed")

#: Whose money an event moves: the user's bill or the operator's cloud
#: spend (§2's provider cost).
ACCOUNTS = ("user", "provider")

KINDS = ("charge", "void")


@dataclass(frozen=True)
class MeterEvent:
    """One immutable ledger entry, in integer nanodollars.

    ``nanodollars`` is positive for charges and non-positive for voids;
    ``billed_nanodollars`` stamps the query's *total* bill on every
    user-account charge so a standalone replay can check the per-query
    axis sum without any other data source.  ``bytes_scanned`` /
    ``data_inflation`` / ``price_per_tb`` carry the $/TB logical-bytes
    basis the bill was computed from (storage counters → cost model),
    closing the audit chain end to end.
    """

    seq: int  # ledger-wide monotonic sequence number
    ts: float  # virtual clock at emission
    kind: str  # "charge" | "void"
    account: str  # "user" | "provider"
    query_id: str
    tenant: str
    level: str  # service level value; "" for provider events
    venue: str  # "vm" | "cf" | "none"
    axis: str  # one of AXES
    nanodollars: int
    billed_nanodollars: int = 0  # the query's total user bill
    span_id: int | None = None  # root span of the query's trace
    bytes_scanned: int = 0  # logical bytes from storage counters
    data_inflation: float = 1.0
    price_per_tb: float = 0.0
    reason: str | None = None  # voids carry why ("cancelled", ...)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": round(self.ts, 9),
            "kind": self.kind,
            "account": self.account,
            "query_id": self.query_id,
            "tenant": self.tenant,
            "level": self.level,
            "venue": self.venue,
            "axis": self.axis,
            "nanodollars": self.nanodollars,
            "billed_nanodollars": self.billed_nanodollars,
            "span_id": self.span_id,
            "bytes_scanned": self.bytes_scanned,
            "data_inflation": self.data_inflation,
            "price_per_tb": self.price_per_tb,
            "reason": self.reason,
        }

    @staticmethod
    def from_dict(payload: dict) -> "MeterEvent":
        return MeterEvent(
            seq=int(payload["seq"]),
            ts=float(payload["ts"]),
            kind=str(payload["kind"]),
            account=str(payload["account"]),
            query_id=str(payload["query_id"]),
            tenant=str(payload["tenant"]),
            level=str(payload["level"]),
            venue=str(payload["venue"]),
            axis=str(payload["axis"]),
            nanodollars=int(payload["nanodollars"]),
            billed_nanodollars=int(payload.get("billed_nanodollars", 0)),
            span_id=payload.get("span_id"),
            bytes_scanned=int(payload.get("bytes_scanned", 0)),
            data_inflation=float(payload.get("data_inflation", 1.0)),
            price_per_tb=float(payload.get("price_per_tb", 0.0)),
            reason=payload.get("reason"),
        )


class MeterLedger:
    """Append-only meter-event log with deterministic exports.

    Events are never mutated or removed; cancellation appends negating
    ``void`` events.  Listeners (the spend accountant) are notified on
    every append.
    """

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock or (lambda: 0.0)
        self._events: list[MeterEvent] = []
        self._by_query: dict[str, list[int]] = {}
        self._listeners: list[Callable[[MeterEvent], None]] = []

    def add_listener(self, listener: Callable[[MeterEvent], None]) -> None:
        self._listeners.append(listener)

    def _append(self, event: MeterEvent) -> MeterEvent:
        self._events.append(event)
        self._by_query.setdefault(event.query_id, []).append(event.seq)
        for listener in self._listeners:
            listener(event)
        return event

    # -- emission ------------------------------------------------------------

    def charge(
        self,
        query_id: str,
        *,
        axis: str,
        nanodollars: int,
        tenant: str = "default",
        level: str = "",
        venue: str = "none",
        account: str = "user",
        billed_nanodollars: int = 0,
        span_id: int | None = None,
        bytes_scanned: int = 0,
        data_inflation: float = 1.0,
        price_per_tb: float = 0.0,
    ) -> MeterEvent:
        """Append one charge event (amount may be zero for an axis that
        earned nothing; negatives are the reconciler's business to flag,
        not the ledger's to reject — the ledger records what happened)."""
        if axis not in AXES:
            raise ValueError(f"unknown resource axis {axis!r}; expected {AXES}")
        if account not in ACCOUNTS:
            raise ValueError(
                f"unknown account {account!r}; expected {ACCOUNTS}"
            )
        return self._append(
            MeterEvent(
                seq=len(self._events),
                ts=self._clock(),
                kind="charge",
                account=account,
                query_id=query_id,
                tenant=tenant,
                level=level,
                venue=venue,
                axis=axis,
                nanodollars=int(nanodollars),
                billed_nanodollars=int(billed_nanodollars),
                span_id=span_id,
                bytes_scanned=bytes_scanned,
                data_inflation=data_inflation,
                price_per_tb=price_per_tb,
            )
        )

    def charge_query(
        self,
        query_id: str,
        *,
        axes: dict[str, int],
        billed_nanodollars: int,
        tenant: str = "default",
        level: str = "",
        venue: str = "none",
        span_id: int | None = None,
        bytes_scanned: int = 0,
        data_inflation: float = 1.0,
        price_per_tb: float = 0.0,
    ) -> list[MeterEvent]:
        """Emit the four user-account axis charges of one finished query
        (one event per axis, in AXES order, zero amounts included — the
        reconciler wants the complete decomposition on record)."""
        return [
            self.charge(
                query_id,
                axis=axis,
                nanodollars=axes.get(axis, 0),
                tenant=tenant,
                level=level,
                venue=venue,
                account="user",
                billed_nanodollars=billed_nanodollars,
                span_id=span_id,
                bytes_scanned=bytes_scanned,
                data_inflation=data_inflation,
                price_per_tb=price_per_tb,
            )
            for axis in AXES
        ]

    def void(
        self,
        query_id: str,
        *,
        tenant: str = "default",
        level: str = "",
        venue: str = "none",
        span_id: int | None = None,
        reason: str = "cancelled",
    ) -> list[MeterEvent]:
        """Void a query's charges: append one negating event per prior
        user-account charge (so the query nets to exactly zero), or a
        single zero-amount tombstone when nothing had been charged yet —
        a cancelled query still leaves its mark in the ledger."""
        prior = [
            event
            for event in self.events_for(query_id)
            if event.kind == "charge" and event.account == "user"
        ]
        voids: list[MeterEvent] = []
        if prior:
            for event in prior:
                voids.append(
                    self._append(
                        replace(
                            event,
                            seq=len(self._events),
                            ts=self._clock(),
                            kind="void",
                            nanodollars=-event.nanodollars,
                            reason=reason,
                        )
                    )
                )
            return voids
        voids.append(
            self._append(
                MeterEvent(
                    seq=len(self._events),
                    ts=self._clock(),
                    kind="void",
                    account="user",
                    query_id=query_id,
                    tenant=tenant,
                    level=level,
                    venue=venue,
                    axis="fixed",
                    nanodollars=0,
                    reason=reason,
                )
            )
        )
        return voids

    # -- queries -------------------------------------------------------------

    def events(self) -> list[MeterEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def events_for(self, query_id: str) -> list[MeterEvent]:
        return [
            self._events[seq] for seq in self._by_query.get(query_id, [])
        ]

    def query_ids(self) -> list[str]:
        """Query ids with at least one ledger event, sorted."""
        return sorted(self._by_query)

    def net_nanodollars(self, query_id: str, account: str = "user") -> int:
        """Charges minus voids for one query on one account."""
        return sum(
            event.nanodollars
            for event in self.events_for(query_id)
            if event.account == account
        )

    def total_nanodollars(self, account: str = "user") -> int:
        return sum(
            event.nanodollars
            for event in self._events
            if event.account == account
        )

    def voided_query_ids(self) -> list[str]:
        return sorted(
            {
                event.query_id
                for event in self._events
                if event.kind == "void"
            }
        )

    # -- export --------------------------------------------------------------

    def export_jsonl(self) -> str:
        """The whole ledger as byte-stable JSONL, one event per line in
        sequence order."""
        lines = [
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self._events
        ]
        return "\n".join(lines) + ("\n" if lines else "")


def load_events_jsonl(text: str) -> list[MeterEvent]:
    """Parse a :meth:`MeterLedger.export_jsonl` document back into
    events — the standalone-replay entry point the reconciler CLI uses."""
    events: list[MeterEvent] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            events.append(MeterEvent.from_dict(json.loads(line)))
    return events


def events_jsonl(events: Iterable[MeterEvent]) -> str:
    """Serialize events the same way the ledger does (test helper for
    building corrupted ledgers)."""
    lines = [json.dumps(event.to_dict(), sort_keys=True) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


class NoopMeterLedger(MeterLedger):
    """Inert twin: swallows charges, exports nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def charge(self, query_id, **kwargs):  # type: ignore[override]
        return None

    def charge_query(self, query_id, **kwargs):  # type: ignore[override]
        return []

    def void(self, query_id, **kwargs):  # type: ignore[override]
        return []

    def export_jsonl(self) -> str:
        return ""
