"""Per-service-level SLO accounting (deadline compliance).

PixelsDB's product promise is a *pending-time deadline per service
level*: immediate queries start at once, relaxed queries start before
the grace period expires, best-of-effort queries carry no deadline.
The :class:`SloTracker` turns that promise into first-class accounting:
every completed query is recorded as an :class:`SloRecord` (deadline vs
actual pending time, slack, violation flag, billed $), and per level the
tracker maintains

* lifetime and rolling compliance ratios,
* a fixed-window **error budget** against a configurable target
  (e.g. 99 % of queries meet their deadline per accounting window), and
* windowed **burn rates** — the violation rate expressed as a multiple
  of the rate that would exactly exhaust the budget — which is what the
  alert engine's fast/slow dual-window rules consume.

Everything runs on completed-query timestamps from the virtual clock,
so same-seed runs export byte-identical JSON.  The tracker never feeds
back into admission, scheduling, or billing: with the
:class:`NoopSloTracker` default the whole subsystem is a no-op call per
completed query.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

#: Slack histogram buckets in seconds.  Slack = deadline − actual, so
#: negative buckets measure *by how much* a deadline was missed.
SLACK_BUCKETS = (
    -1800.0, -300.0, -60.0, -5.0, 0.0, 5.0, 60.0, 300.0, 1800.0,
)

#: Violations are strict: actual must exceed the deadline by more than
#: this guard band (absorbs float noise from simulated timestamps).
VIOLATION_EPSILON_S = 1e-9


@dataclass(frozen=True)
class SloObjective:
    """The compliance objective for one service level.

    ``target`` is the fraction of queries that must meet their deadline
    within each error-budget window; the budget is the complementary
    fraction ``1 - target``.  Levels without deadlines (best-of-effort)
    still get an objective so their traffic and billing are tracked, but
    they can never consume budget.
    """

    level: str
    target: float = 0.99
    budget_window_s: float = 3600.0

    def __post_init__(self) -> None:
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"target must be in (0, 1]: {self.target}")
        if self.budget_window_s <= 0:
            raise ValueError("budget_window_s must be positive")

    @property
    def budget_fraction(self) -> float:
        """The allowed violation fraction per window."""
        return 1.0 - self.target


def default_objectives() -> list[SloObjective]:
    """The demo's published targets: 99 % for deadline-based levels."""
    return [
        SloObjective("immediate", target=0.99),
        SloObjective("relaxed", target=0.99),
        SloObjective("best_effort", target=0.99),
    ]


@dataclass(frozen=True)
class SloRecord:
    """One completed query's deadline outcome."""

    query_id: str
    level: str
    submitted_at: float
    finished_at: float
    deadline_s: float | None  # None → the level carries no deadline
    actual_s: float  # measured pending time (submission → exec start)
    slack_s: float | None  # deadline − actual; None when no deadline
    violated: bool
    billed: float = 0.0

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "level": self.level,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
            "deadline_s": self.deadline_s,
            "actual_s": self.actual_s,
            "slack_s": self.slack_s,
            "violated": self.violated,
            "billed": self.billed,
        }


@dataclass
class _BudgetWindow:
    """Error-budget tallies for one fixed accounting window."""

    index: int
    total: int = 0
    violations: int = 0

    def consumed_fraction(self, budget_fraction: float) -> float:
        """Budget consumed so far: 1.0 means exactly exhausted."""
        if self.total == 0:
            return 0.0
        violation_rate = self.violations / self.total
        if budget_fraction <= 0.0:
            return math.inf if self.violations else 0.0
        return violation_rate / budget_fraction

    def to_dict(self, objective: SloObjective) -> dict:
        consumed = self.consumed_fraction(objective.budget_fraction)
        return {
            "window_index": self.index,
            "window_start_s": self.index * objective.budget_window_s,
            "window_s": objective.budget_window_s,
            "total": self.total,
            "violations": self.violations,
            "budget_fraction": objective.budget_fraction,
            "consumed_fraction": consumed,
            "exhausted": consumed >= 1.0 and self.violations > 0,
        }


class _LevelState:
    """All accounting for one service level."""

    def __init__(self, objective: SloObjective) -> None:
        self.objective = objective
        self.records: list[SloRecord] = []
        self.total = 0
        self.violations = 0
        self.billed = 0.0
        self.window = _BudgetWindow(index=0)
        self.closed_windows: list[_BudgetWindow] = []

    def add(self, record: SloRecord) -> None:
        self.total += 1
        self.billed += record.billed
        if record.violated:
            self.violations += 1
        self.records.append(record)
        self._roll_window(record.finished_at)
        if record.deadline_s is not None:
            self.window.total += 1
            if record.violated:
                self.window.violations += 1

    def _roll_window(self, now: float) -> None:
        index = int(now // self.objective.budget_window_s)
        if index > self.window.index:
            # Close the current window (even if empty windows were
            # skipped in between — only the occupied one is kept).
            if self.window.total:
                self.closed_windows.append(self.window)
            self.window = _BudgetWindow(index=index)

    def compliance(self) -> float | None:
        """Lifetime fraction of deadline-carrying queries that met it."""
        deadlined = [r for r in self.records if r.deadline_s is not None]
        if not deadlined:
            return None
        met = sum(1 for r in deadlined if not r.violated)
        return met / len(deadlined)

    def rolling_compliance(self, window: int) -> float | None:
        """Compliance over the most recent ``window`` deadline-carrying
        queries — the operator's 'are we OK right now' number."""
        deadlined = [r for r in self.records if r.deadline_s is not None]
        if not deadlined:
            return None
        recent = deadlined[-window:]
        met = sum(1 for r in recent if not r.violated)
        return met / len(recent)

    def window_counts(self, start: float, end: float) -> tuple[int, int]:
        """(violations, total) among deadline-carrying queries finishing
        in the half-open interval ``(start, end]``."""
        violations = 0
        total = 0
        for record in self.records:
            if record.deadline_s is None:
                continue
            if start < record.finished_at <= end:
                total += 1
                if record.violated:
                    violations += 1
        return violations, total

    def burn_rate(self, window_s: float, now: float) -> float:
        """Violation rate over the trailing window, as a multiple of the
        budget-exhausting rate.  1.0 means the error budget is being
        consumed exactly as fast as it accrues; 0.0 when no deadline
        traffic fell in the window."""
        violations, total = self.window_counts(now - window_s, now)
        if total == 0:
            return 0.0
        rate = violations / total
        budget = self.objective.budget_fraction
        if budget <= 0.0:
            return math.inf if violations else 0.0
        return rate / budget


class SloTracker:
    """Deadline-compliance accounting across service levels."""

    enabled: bool = True

    def __init__(
        self,
        objectives: list[SloObjective] | None = None,
        rolling_window: int = 100,
    ) -> None:
        if objectives is None:
            objectives = default_objectives()
        self._levels: dict[str, _LevelState] = {
            objective.level: _LevelState(objective)
            for objective in objectives
        }
        self._rolling_window = rolling_window

    # -- recording ----------------------------------------------------------

    def record(
        self,
        query_id: str,
        level: str,
        submitted_at: float,
        finished_at: float,
        deadline_s: float | None,
        actual_s: float,
        billed: float = 0.0,
    ) -> SloRecord | None:
        """Account one completed query; returns its :class:`SloRecord`."""
        state = self._levels.get(level)
        if state is None:
            state = _LevelState(SloObjective(level))
            self._levels[level] = state
        if deadline_s is None:
            slack: float | None = None
            violated = False
        else:
            slack = deadline_s - actual_s
            violated = actual_s > deadline_s + VIOLATION_EPSILON_S
        record = SloRecord(
            query_id=query_id,
            level=level,
            submitted_at=submitted_at,
            finished_at=finished_at,
            deadline_s=deadline_s,
            actual_s=actual_s,
            slack_s=slack,
            violated=violated,
            billed=billed,
        )
        state.add(record)
        return record

    # -- queries ------------------------------------------------------------

    def levels(self) -> list[str]:
        return sorted(self._levels)

    def records(self, level: str | None = None) -> list[SloRecord]:
        if level is not None:
            state = self._levels.get(level)
            return list(state.records) if state else []
        out: list[SloRecord] = []
        for name in self.levels():
            out.extend(self._levels[name].records)
        out.sort(key=lambda r: (r.finished_at, r.query_id))
        return out

    def compliance(self, level: str) -> float | None:
        state = self._levels.get(level)
        return state.compliance() if state else None

    def rolling_compliance(self, level: str) -> float | None:
        state = self._levels.get(level)
        if state is None:
            return None
        return state.rolling_compliance(self._rolling_window)

    def burn_rate(self, level: str, window_s: float, now: float) -> float:
        state = self._levels.get(level)
        return state.burn_rate(window_s, now) if state else 0.0

    def budget(self, level: str) -> dict | None:
        """The current error-budget window's state for ``level``."""
        state = self._levels.get(level)
        if state is None:
            return None
        return state.window.to_dict(state.objective)

    def budget_history(self, level: str) -> list[dict]:
        """Closed (already-rolled) budget windows, oldest first."""
        state = self._levels.get(level)
        if state is None:
            return []
        return [w.to_dict(state.objective) for w in state.closed_windows]

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Per-level summary: compliance, budget state, billing — the
        dashboard's 'per-level compliance table' input."""
        levels = {}
        for name in self.levels():
            state = self._levels[name]
            levels[name] = {
                "objective": {
                    "target": state.objective.target,
                    "budget_window_s": state.objective.budget_window_s,
                },
                "queries": state.total,
                "violations": state.violations,
                "compliance": state.compliance(),
                "rolling_compliance": state.rolling_compliance(
                    self._rolling_window
                ),
                "billed": state.billed,
                "budget": state.window.to_dict(state.objective),
                "closed_windows": [
                    w.to_dict(state.objective) for w in state.closed_windows
                ],
            }
        return {"levels": levels}

    def export_json(self) -> str:
        """Every record plus the summary, as deterministic JSON."""
        document = {
            "records": [r.to_dict() for r in self.records()],
            "summary": self.snapshot(),
        }
        return json.dumps(document, sort_keys=True, indent=2)


class NoopSloTracker(SloTracker):
    """The disabled twin: swallows records, reports nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(objectives=[])

    def record(self, *args: object, **kwargs: object) -> SloRecord | None:
        return None

    def snapshot(self) -> dict:
        return {"levels": {}}

    def export_json(self) -> str:
        return json.dumps({"records": [], "summary": {"levels": {}}})
