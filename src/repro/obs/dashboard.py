"""The operator dashboard: a time-series export rendered as one file.

:func:`render_dashboard_html` turns a :class:`DashboardData` bundle into
a **self-contained** static HTML report — inline CSS, inline SVG
sparklines, no scripts, no external fetches — so it can be archived as a
CI artifact and diffed byte-for-byte between runs.
:func:`render_dashboard_text` is the console variant (unicode block
sparklines) for terminals and bench logs.

Determinism rules both renderers: iteration orders are sorted, floats go
through one fixed formatter, and all inputs come from virtual-clock
exports — so same-seed runs produce identical bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html import escape

from repro.obs.alerts import AlertEngine, AlertEvent
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.obs.statements import StatementStore
from repro.obs.timeseries import TimeSeriesStore

#: Series drawn as sparklines, in display order: (metric, labels, title).
DEFAULT_PANELS: tuple[tuple[str, tuple[tuple[str, str], ...], str], ...] = (
    ("pixels_vm_workers", (), "VM workers"),
    ("pixels_vm_queue_depth", (), "VM queue depth"),
    ("pixels_vm_concurrency", (), "VM concurrency"),
    (
        "pixels_server_queue_depth",
        (("level", "relaxed"),),
        "held relaxed queries",
    ),
    (
        "pixels_server_queue_depth",
        (("level", "best_effort"),),
        "held best-effort queries",
    ),
    ("pixels_vm_watermark_crossings_total", (("watermark", "high"),), "scale-outs"),
    ("pixels_vm_watermark_crossings_total", (("watermark", "low"),), "scale-ins"),
)

_LEVEL_ORDER = ("immediate", "relaxed", "best_effort")


def _fmt(value: float | None, digits: int = 6) -> str:
    """The one float formatter: fixed significant digits, no locale."""
    if value is None:
        return "-"
    if value != value:  # NaN
        return "nan"
    return f"{value:.{digits}g}"


def _pct(value: float | None) -> str:
    return "-" if value is None else f"{100.0 * value:.2f}%"


@dataclass
class DashboardData:
    """Everything one dashboard render consumes."""

    title: str
    generated_at: float  # simulated seconds at export time
    seed: int | None = None
    timeseries: TimeSeriesStore = field(default_factory=TimeSeriesStore)
    slo: dict = field(default_factory=lambda: {"levels": {}})
    alerts: list[AlertEvent] = field(default_factory=list)
    firing: list[str] = field(default_factory=list)
    audit: list[dict] = field(default_factory=list)
    #: Per-level pending-time percentiles (``level -> {p50, p95, p99}``),
    #: bucket-estimated from the ``pixels_query_pending_seconds`` histogram.
    pending_percentiles: dict = field(default_factory=dict)
    #: Top statements by billed $ from the statement store, JSON-ready
    #: rows in rank order (empty when the run had no statement stats).
    top_statements: list[dict] = field(default_factory=list)
    #: Per-tenant spend rows from the spend accountant (tenant, net
    #: dollars, per-level split, soft budget, over-budget flag).
    tenant_spend: list[dict] = field(default_factory=list)
    #: The query server's scheduler snapshot (per-tenant/per-level queue
    #: depths, WFQ shares, Jain fairness, admission verdicts) — see
    #: ``QueryServer.scheduler_snapshot()``.  Empty when the export did
    #: not come from a live server.
    scheduler: dict = field(default_factory=dict)
    #: The activity registry's live snapshot (lifecycle states, per-query
    #: progress, projected vs. actual $) — see
    #: ``ActivityRegistry.snapshot()``.  Empty without observability.
    activity: dict = field(default_factory=dict)

    @staticmethod
    def build(
        title: str,
        now: float,
        timeseries: TimeSeriesStore,
        slo: SloTracker | None = None,
        alerts: AlertEngine | None = None,
        audit: list[dict] | None = None,
        seed: int | None = None,
        registry: MetricsRegistry | None = None,
        statements: StatementStore | None = None,
        spend=None,
        scheduler: dict | None = None,
        activity=None,
    ) -> "DashboardData":
        return DashboardData(
            title=title,
            generated_at=now,
            seed=seed,
            timeseries=timeseries,
            slo=slo.snapshot() if slo is not None else {"levels": {}},
            alerts=list(alerts.events) if alerts is not None else [],
            firing=alerts.firing() if alerts is not None else [],
            audit=list(audit or []),
            pending_percentiles=_pending_percentiles(registry),
            top_statements=_top_statement_rows(statements),
            tenant_spend=_tenant_spend_rows(spend),
            scheduler=dict(scheduler or {}),
            activity=(
                activity.snapshot()
                if activity is not None and getattr(activity, "enabled", False)
                else {}
            ),
        )


def _top_statement_rows(
    statements: StatementStore | None, k: int = 10
) -> list[dict]:
    """Rank-ordered top-``k`` statements by billed $ for the panel."""
    if statements is None or not statements.enabled:
        return []
    rows: list[dict] = []
    for entry in statements.top(k, by="dollars"):
        ratio = entry.cache_hit_ratio
        rows.append(
            {
                "fingerprint": entry.fingerprint,
                "level": entry.level,
                "statement": entry.statement,
                "calls": entry.calls,
                "errors": entry.errors,
                "time_s": entry.time_s,
                "mean_time_s": entry.mean_time_s,
                "dollars": entry.dollars,
                "bytes_scanned": entry.bytes_scanned,
                "cache_hit_ratio": ratio,
            }
        )
    return rows


def _tenant_spend_rows(spend) -> list[dict]:
    """Per-tenant net-spend rows (descending by spend) for the panel;
    ``spend`` is a :class:`~repro.obs.spend.SpendAccountant` or None."""
    if spend is None or not getattr(spend, "enabled", False):
        return []
    report = spend.report()
    rows = list(report.get("tenants", []))
    rows.sort(key=lambda r: (-r["nanodollars"], r["tenant"]))
    return rows


def _scheduler_rows(scheduler: dict) -> list[dict]:
    """Per-tenant scheduler rows (held depth per level, live count, WFQ
    share, dispatch count) from a ``scheduler_snapshot()`` dict."""
    if not scheduler:
        return []
    queues = scheduler.get("queues", {})
    dispatched = scheduler.get("dispatched_by_tenant", {})
    shares = scheduler.get("shares", {})
    live = scheduler.get("tenant_live", {})
    tenants = sorted(
        set(dispatched)
        | set(live)
        | {t for depths in queues.values() for t in depths}
    )
    default_share = shares.get("default", 1.0)
    return [
        {
            "tenant": tenant,
            "relaxed": queues.get("relaxed", {}).get(tenant, 0),
            "best_effort": queues.get("best_effort", {}).get(tenant, 0),
            "live": live.get(tenant, 0),
            "share": shares.get(tenant, default_share),
            "dispatched": dispatched.get(tenant, 0),
        }
        for tenant in tenants
    ]


def _activity_rows(activity: dict) -> list[dict]:
    """Per-query rows for the "Active queries" panel, straight from an
    ``ActivityRegistry.snapshot()`` dict (already in submission order)."""
    rows: list[dict] = []
    for query in activity.get("queries", []):
        projection = query.get("projection", {})
        rows.append(
            {
                "query_id": query.get("query_id", ""),
                "state": query.get("state", ""),
                "tenant": query.get("tenant", ""),
                "level": query.get("level") or "-",
                "venue": query.get("venue") or "-",
                "progress": float(query.get("progress", 0.0)),
                "projected_nanos": projection.get("nanodollars"),
                "remaining_s": projection.get("remaining_s"),
                "actual_nanos": query.get("actual_nanodollars"),
                "detail": query.get("detail", ""),
            }
        )
    return rows


def _state_summary(activity: dict) -> str:
    states = activity.get("states", {})
    if not states:
        return "-"
    return ", ".join(f"{state}={states[state]}" for state in sorted(states))


def _progress_bar_text(fraction: float, width: int = 12) -> str:
    """``[#####-------]``-style bar for the console renderer."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _nanos_dollars(nanos) -> str:
    return "-" if nanos is None else f"{nanos / 1e9:.9f}"


def _verdict_summary(counts: dict) -> str:
    """``reason=count`` listing for admission reject/downgrade tallies."""
    if not counts:
        return "-"
    return ", ".join(f"{reason}={counts[reason]}" for reason in sorted(counts))


def _pending_percentiles(registry: MetricsRegistry | None) -> dict:
    """p50/p95/p99 pending time per level from the registry's histogram."""
    if registry is None:
        return {}
    histogram = registry.get("pixels_query_pending_seconds")
    if histogram is None or not hasattr(histogram, "quantile"):
        return {}
    out: dict = {}
    for name in _LEVEL_ORDER:
        if histogram.count(level=name):
            out[name] = {
                label: histogram.quantile(q, level=name)
                for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
            }
    return out


def _ordered_levels(levels: dict) -> list[str]:
    known = [name for name in _LEVEL_ORDER if name in levels]
    extra = sorted(name for name in levels if name not in _LEVEL_ORDER)
    return known + extra


def _cache_hit_ratio_series(store: TimeSeriesStore) -> list[tuple[float, float]]:
    """Chunk-cache hit ratio at each scrape, from cumulative counters."""
    hits = dict(
        store.series(
            "pixels_cache_events_total", kind="chunk", outcome="hit"
        )
    )
    misses = dict(
        store.series(
            "pixels_cache_events_total", kind="chunk", outcome="miss"
        )
    )
    out: list[tuple[float, float]] = []
    for time in sorted(set(hits) | set(misses)):
        hit = hits.get(time, 0.0)
        total = hit + misses.get(time, 0.0)
        if total > 0:
            out.append((time, hit / total))
    return out


def _billed_series(store: TimeSeriesStore, level: str) -> list[tuple[float, float]]:
    return store.series("pixels_billed_dollars_total", level=level)


# -- SVG sparklines -------------------------------------------------------------

_SPARK_W = 220.0
_SPARK_H = 42.0
_SPARK_PAD = 3.0


def _sparkline_svg(samples: list[tuple[float, float]]) -> str:
    """A fixed-size inline SVG polyline over ``(time, value)`` samples."""
    if not samples:
        return '<svg class="spark" viewBox="0 0 220 42"></svg>'
    times = [t for t, _ in samples]
    values = [v for _, v in samples]
    t0, t1 = min(times), max(times)
    v0, v1 = min(values), max(values)
    t_span = (t1 - t0) or 1.0
    v_span = (v1 - v0) or 1.0
    points = []
    for t, v in samples:
        x = _SPARK_PAD + (t - t0) / t_span * (_SPARK_W - 2 * _SPARK_PAD)
        y = (
            _SPARK_H
            - _SPARK_PAD
            - (v - v0) / v_span * (_SPARK_H - 2 * _SPARK_PAD)
        )
        points.append(f"{x:.2f},{y:.2f}")
    return (
        '<svg class="spark" viewBox="0 0 220 42">'
        f'<polyline fill="none" stroke="#2563ab" stroke-width="1.5" '
        f'points="{" ".join(points)}"/></svg>'
    )


_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def _sparkline_text(samples: list[tuple[float, float]], width: int = 40) -> str:
    """A unicode block sparkline for the console renderer."""
    if not samples:
        return ""
    values = [v for _, v in samples]
    if len(values) > width:  # last-value downsample into ``width`` cells
        step = len(values) / width
        values = [values[min(int((i + 1) * step) - 1, len(values) - 1)]
                  for i in range(width)]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    return "".join(
        _SPARK_GLYPHS[
            min(
                int((v - lo) / span * len(_SPARK_GLYPHS)),
                len(_SPARK_GLYPHS) - 1,
            )
        ]
        for v in values
    )


# -- HTML ----------------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 24px; color: #1c2733; background: #f7f9fb; }
h1 { font-size: 20px; margin-bottom: 2px; }
h2 { font-size: 15px; margin: 22px 0 8px; border-bottom: 1px solid #d5dde5;
     padding-bottom: 3px; }
.meta { color: #5b6b7b; font-size: 12px; }
table { border-collapse: collapse; font-size: 13px; background: #fff; }
th, td { border: 1px solid #d5dde5; padding: 4px 10px; text-align: right; }
th { background: #eef2f6; font-weight: 600; }
td.l, th.l { text-align: left; }
.panels { display: flex; flex-wrap: wrap; gap: 14px; }
.panel { background: #fff; border: 1px solid #d5dde5; border-radius: 4px;
         padding: 8px 10px; }
.panel .title { font-size: 12px; color: #5b6b7b; }
.panel .last { font-size: 16px; font-weight: 600; }
.spark { display: block; margin-top: 4px; }
.ok { color: #1a7f37; } .bad { color: #b42318; font-weight: 600; }
.firing { background: #fdecea; }
.pbar { display: inline-block; width: 90px; height: 9px; background: #e4eaf0;
        border: 1px solid #d5dde5; border-radius: 3px; vertical-align: middle; }
.pfill { height: 100%; background: #2563ab; border-radius: 3px; }
"""


def render_dashboard_html(data: DashboardData) -> str:
    """The self-contained static HTML report."""
    store = data.timeseries
    out: list[str] = []
    out.append("<!DOCTYPE html>")
    out.append('<html lang="en"><head><meta charset="utf-8">')
    out.append(f"<title>{escape(data.title)}</title>")
    out.append(f"<style>{_CSS}</style></head><body>")
    out.append(f"<h1>{escape(data.title)}</h1>")
    seed_part = f" · seed {data.seed}" if data.seed is not None else ""
    out.append(
        f'<div class="meta">simulated time {_fmt(data.generated_at)}s'
        f" · {len(store)} samples over {len(store.scrape_times)} scrapes"
        f"{escape(seed_part)}</div>"
    )

    # -- per-level compliance + price-vs-SLO summary --
    out.append("<h2>Service levels: deadline compliance &amp; price</h2>")
    out.append("<table><tr>")
    for header in (
        "level", "queries", "violations", "compliance", "rolling",
        "target", "budget consumed", "budget state", "billed $",
        "pending p50 (s)", "pending p95 (s)", "pending p99 (s)",
    ):
        css = ' class="l"' if header == "level" else ""
        out.append(f"<th{css}>{header}</th>")
    out.append("</tr>")
    levels = data.slo.get("levels", {})
    for name in _ordered_levels(levels):
        level = levels[name]
        budget = level.get("budget", {})
        exhausted = budget.get("exhausted", False)
        state_css = "bad" if exhausted else "ok"
        state = "EXHAUSTED" if exhausted else "ok"
        percentiles = data.pending_percentiles.get(name, {})
        out.append(
            "<tr>"
            f'<td class="l">{escape(name)}</td>'
            f"<td>{level.get('queries', 0)}</td>"
            f"<td>{level.get('violations', 0)}</td>"
            f"<td>{_pct(level.get('compliance'))}</td>"
            f"<td>{_pct(level.get('rolling_compliance'))}</td>"
            f"<td>{_pct(level.get('objective', {}).get('target'))}</td>"
            f"<td>{_pct(budget.get('consumed_fraction'))}</td>"
            f'<td class="{state_css}">{state}</td>'
            f"<td>{_fmt(level.get('billed'))}</td>"
            f"<td>{_fmt(percentiles.get('p50'))}</td>"
            f"<td>{_fmt(percentiles.get('p95'))}</td>"
            f"<td>{_fmt(percentiles.get('p99'))}</td>"
            "</tr>"
        )
    out.append("</table>")

    # -- sparkline panels --
    out.append("<h2>Cluster over time</h2>")
    out.append('<div class="panels">')
    panels = list(DEFAULT_PANELS)
    for name, labels, title in panels:
        samples = store.series(name, **dict(labels))
        if not samples:
            continue
        out.append(
            '<div class="panel">'
            f'<div class="title">{escape(title)}</div>'
            f'<div class="last">{_fmt(samples[-1][1])}</div>'
            f"{_sparkline_svg(samples)}</div>"
        )
    ratio = _cache_hit_ratio_series(store)
    if ratio:
        out.append(
            '<div class="panel">'
            '<div class="title">chunk-cache hit ratio</div>'
            f'<div class="last">{_pct(ratio[-1][1])}</div>'
            f"{_sparkline_svg(ratio)}</div>"
        )
    for name in _ordered_levels(levels):
        billed = _billed_series(store, name)
        if billed:
            out.append(
                '<div class="panel">'
                f'<div class="title">billed $ ({escape(name)})</div>'
                f'<div class="last">{_fmt(billed[-1][1])}</div>'
                f"{_sparkline_svg(billed)}</div>"
            )
    out.append("</div>")

    # -- scheduler: queue depths, shares, admission verdicts, fairness --
    # (rendered only for single-server snapshots; a multi-schema export
    # keys snapshots by schema and has no top-level "queues")
    if data.scheduler and "queues" in data.scheduler:
        sched = data.scheduler
        admission = sched.get("admission", {})
        fairness = sched.get("fairness", {}).get("jain_dispatched")
        out.append("<h2>Scheduler</h2>")
        out.append(
            '<div class="meta">'
            f"admitted {admission.get('admitted', 0)}"
            f" · rejected: {escape(_verdict_summary(admission.get('rejected', {})))}"
            f" · downgraded: {escape(_verdict_summary(admission.get('downgraded', {})))}"
            f" · Jain fairness {_fmt(fairness)}"
            "</div>"
        )
        rows = _scheduler_rows(sched)
        if rows:
            out.append("<table><tr>")
            for header in (
                "tenant", "held relaxed", "held best-effort", "live",
                "share", "WFQ dispatches",
            ):
                css = ' class="l"' if header == "tenant" else ""
                out.append(f"<th{css}>{header}</th>")
            out.append("</tr>")
            for row in rows:
                out.append(
                    "<tr>"
                    f'<td class="l">{escape(str(row["tenant"]))}</td>'
                    f"<td>{row['relaxed']}</td>"
                    f"<td>{row['best_effort']}</td>"
                    f"<td>{row['live']}</td>"
                    f"<td>{_fmt(row['share'])}</td>"
                    f"<td>{row['dispatched']}</td>"
                    "</tr>"
                )
            out.append("</table>")
        else:
            out.append('<div class="meta">no held or dispatched queries</div>')

    # -- live query activity: progress bars + projected-vs-actual $ --
    if data.activity:
        rows = _activity_rows(data.activity)
        out.append("<h2>Active queries</h2>")
        out.append(
            '<div class="meta">states: '
            f"{escape(_state_summary(data.activity))}</div>"
        )
        if rows:
            out.append("<table><tr>")
            for header in (
                "query", "state", "tenant", "level", "venue", "progress",
                "projected $", "actual $", "ETA (s)",
            ):
                css = (
                    ' class="l"'
                    if header in ("query", "state", "tenant", "level",
                                  "venue", "progress")
                    else ""
                )
                out.append(f"<th{css}>{header}</th>")
            out.append("</tr>")
            for row in rows:
                pct = min(1.0, max(0.0, row["progress"])) * 100.0
                bar = (
                    '<div class="pbar"><div class="pfill" '
                    f'style="width:{pct:.1f}%"></div></div> {pct:.1f}%'
                )
                out.append(
                    "<tr>"
                    f'<td class="l">{escape(str(row["query_id"]))}</td>'
                    f'<td class="l">{escape(str(row["state"]))}</td>'
                    f'<td class="l">{escape(str(row["tenant"]))}</td>'
                    f'<td class="l">{escape(str(row["level"]))}</td>'
                    f'<td class="l">{escape(str(row["venue"]))}</td>'
                    f'<td class="l">{bar}</td>'
                    f"<td>{_nanos_dollars(row['projected_nanos'])}</td>"
                    f"<td>{_nanos_dollars(row['actual_nanos'])}</td>"
                    f"<td>{_fmt(row['remaining_s'])}</td>"
                    "</tr>"
                )
            out.append("</table>")
        else:
            out.append('<div class="meta">no queries tracked</div>')

    # -- per-tenant spend (metering ledger) --
    if data.tenant_spend:
        out.append("<h2>Spend by tenant</h2>")
        out.append("<table><tr>")
        for header in (
            "tenant", "net $", "by level", "budget $", "status",
        ):
            css = ' class="l"' if header in ("tenant", "by level") else ""
            out.append(f"<th{css}>{header}</th>")
        out.append("</tr>")
        for row in data.tenant_spend:
            by_level = ", ".join(
                f"{level}={nanos / 1e9:.9f}"
                for level, nanos in row.get("by_level", {}).items()
            )
            budget = row.get("budget_dollars")
            status = (
                "OVER BUDGET"
                if row.get("over_budget")
                else ("ok" if budget is not None else "-")
            )
            out.append(
                "<tr>"
                f'<td class="l">{escape(str(row.get("tenant", "")))}</td>'
                f"<td>{_fmt(row.get('dollars'), 9)}</td>"
                f'<td class="l">{escape(by_level)}</td>'
                f"<td>{_fmt(budget, 4) if budget is not None else '-'}</td>"
                f"<td>{escape(status)}</td>"
                "</tr>"
            )
        out.append("</table>")

    # -- top queries (statement statistics) --
    if data.top_statements:
        out.append("<h2>Top queries by billed $</h2>")
        out.append("<table><tr>")
        for header in (
            "fingerprint", "level", "calls", "errors", "time (s)",
            "mean (s)", "billed $", "GB scanned", "cache hit",
            "statement",
        ):
            css = (
                ' class="l"'
                if header in ("fingerprint", "level", "statement")
                else ""
            )
            out.append(f"<th{css}>{header}</th>")
        out.append("</tr>")
        for row in data.top_statements:
            statement = row.get("statement", "")
            if len(statement) > 80:
                statement = statement[:77] + "..."
            out.append(
                "<tr>"
                f'<td class="l">{escape(str(row.get("fingerprint", "")))}</td>'
                f'<td class="l">{escape(str(row.get("level", "")))}</td>'
                f"<td>{row.get('calls', 0)}</td>"
                f"<td>{row.get('errors', 0)}</td>"
                f"<td>{_fmt(row.get('time_s'))}</td>"
                f"<td>{_fmt(row.get('mean_time_s'))}</td>"
                f"<td>{_fmt(row.get('dollars'), 9)}</td>"
                f"<td>{_fmt(row.get('bytes_scanned', 0) / 1e9, 4)}</td>"
                f"<td>{_pct(row.get('cache_hit_ratio'))}</td>"
                f'<td class="l">{escape(statement)}</td>'
                "</tr>"
            )
        out.append("</table>")

    # -- alert timeline --
    out.append("<h2>Alerts</h2>")
    if data.firing:
        names = ", ".join(escape(name) for name in data.firing)
        out.append(f'<div class="meta bad">still firing: {names}</div>')
    if data.alerts:
        out.append(
            '<table><tr><th>time (s)</th><th class="l">rule</th>'
            '<th class="l">state</th><th>value</th><th class="l">rule text'
            "</th></tr>"
        )
        for event in data.alerts:
            css = ' class="firing"' if event.state == "firing" else ""
            out.append(
                f"<tr{css}><td>{_fmt(event.time)}</td>"
                f'<td class="l">{escape(event.rule)}</td>'
                f'<td class="l">{escape(event.state)}</td>'
                f"<td>{_fmt(event.value)}</td>"
                f'<td class="l">{escape(event.detail)}</td></tr>'
            )
        out.append("</table>")
    else:
        out.append('<div class="meta">no alerts fired</div>')

    # -- autoscaler audit log --
    out.append("<h2>Autoscaler decisions</h2>")
    if data.audit:
        out.append(
            '<table><tr><th>time (s)</th><th class="l">action</th>'
            '<th class="l">watermark</th><th>trigger</th><th>threshold</th>'
            "<th>concurrency</th><th>queue</th><th>workers</th><th>Δ</th>"
            "<th>target</th></tr>"
        )
        for entry in data.audit:
            out.append(
                f"<tr><td>{_fmt(entry.get('time'))}</td>"
                f'<td class="l">{escape(str(entry.get("action", "")))}</td>'
                f'<td class="l">{escape(str(entry.get("watermark", "")))}</td>'
                f"<td>{_fmt(entry.get('trigger_value'))}</td>"
                f"<td>{_fmt(entry.get('threshold'))}</td>"
                f"<td>{entry.get('concurrency', 0)}</td>"
                f"<td>{entry.get('queue_depth', 0)}</td>"
                f"<td>{entry.get('workers_before', 0)}</td>"
                f"<td>{entry.get('delta', 0):+d}</td>"
                f"<td>{entry.get('workers_target', 0)}</td></tr>"
            )
        out.append("</table>")
    else:
        out.append('<div class="meta">no scaling decisions recorded</div>')

    out.append("</body></html>")
    return "\n".join(out) + "\n"


# -- plain text ----------------------------------------------------------------


def render_dashboard_text(data: DashboardData, width: int = 40) -> str:
    """The console variant of the dashboard."""
    store = data.timeseries
    lines: list[str] = []
    lines.append(data.title)
    lines.append("=" * len(data.title))
    lines.append(
        f"simulated time {_fmt(data.generated_at)}s · "
        f"{len(store)} samples over {len(store.scrape_times)} scrapes"
    )
    lines.append("")
    lines.append("service levels")
    lines.append("-" * 14)
    levels = data.slo.get("levels", {})
    header = (
        f"{'level':<12} {'queries':>8} {'viol':>6} {'compliance':>11} "
        f"{'target':>8} {'budget':>10} {'billed $':>12} "
        f"{'pend p50/p95/p99 (s)':>22}"
    )
    lines.append(header)
    for name in _ordered_levels(levels):
        level = levels[name]
        budget = level.get("budget", {})
        state = "EXHAUSTED" if budget.get("exhausted") else _pct(
            budget.get("consumed_fraction")
        )
        percentiles = data.pending_percentiles.get(name, {})
        pend = "/".join(
            _fmt(percentiles.get(label), 4)
            for label in ("p50", "p95", "p99")
        )
        lines.append(
            f"{name:<12} {level.get('queries', 0):>8} "
            f"{level.get('violations', 0):>6} "
            f"{_pct(level.get('compliance')):>11} "
            f"{_pct(level.get('objective', {}).get('target')):>8} "
            f"{state:>10} {_fmt(level.get('billed')):>12} "
            f"{pend:>22}"
        )
    lines.append("")
    lines.append("cluster over time")
    lines.append("-" * 17)
    for name, labels, title in DEFAULT_PANELS:
        samples = store.series(name, **dict(labels))
        if not samples:
            continue
        spark = _sparkline_text(samples, width)
        lines.append(f"{title:<26} {spark}  last={_fmt(samples[-1][1])}")
    ratio = _cache_hit_ratio_series(store)
    if ratio:
        lines.append(
            f"{'chunk-cache hit ratio':<26} {_sparkline_text(ratio, width)}"
            f"  last={_pct(ratio[-1][1])}"
        )
    if data.scheduler and "queues" in data.scheduler:
        sched = data.scheduler
        admission = sched.get("admission", {})
        fairness = sched.get("fairness", {}).get("jain_dispatched")
        lines.append("")
        lines.append("scheduler")
        lines.append("-" * 9)
        lines.append(
            f"admitted {admission.get('admitted', 0)} · "
            f"rejected: {_verdict_summary(admission.get('rejected', {}))} · "
            f"downgraded: {_verdict_summary(admission.get('downgraded', {}))} · "
            f"Jain fairness {_fmt(fairness)}"
        )
        rows = _scheduler_rows(sched)
        if rows:
            lines.append(
                f"{'tenant':<16} {'relaxed':>8} {'best_eff':>9} "
                f"{'live':>6} {'share':>7} {'dispatched':>11}"
            )
            for row in rows:
                lines.append(
                    f"{str(row['tenant']):<16} {row['relaxed']:>8} "
                    f"{row['best_effort']:>9} {row['live']:>6} "
                    f"{_fmt(row['share']):>7} {row['dispatched']:>11}"
                )
    if data.activity:
        lines.append("")
        lines.append("active queries")
        lines.append("-" * 14)
        lines.append(f"states: {_state_summary(data.activity)}")
        rows = _activity_rows(data.activity)
        if rows:
            lines.append(
                f"{'query':<12} {'state':<10} {'tenant':<12} {'level':<12} "
                f"{'progress':<22} {'projected_$':>14} {'actual_$':>14}"
            )
            for row in rows:
                bar = _progress_bar_text(row["progress"])
                pct = min(1.0, max(0.0, row["progress"])) * 100.0
                lines.append(
                    f"{str(row['query_id']):<12} {str(row['state']):<10} "
                    f"{str(row['tenant']):<12} {str(row['level']):<12} "
                    f"{bar + f' {pct:5.1f}%':<22} "
                    f"{_nanos_dollars(row['projected_nanos']):>14} "
                    f"{_nanos_dollars(row['actual_nanos']):>14}"
                )
        else:
            lines.append("(no queries tracked)")
    if data.tenant_spend:
        lines.append("")
        lines.append("spend by tenant")
        lines.append("-" * 15)
        lines.append(
            f"{'tenant':<16} {'net_$':>14} {'budget_$':>10}  status"
        )
        for row in data.tenant_spend:
            budget = row.get("budget_dollars")
            status = (
                "OVER BUDGET"
                if row.get("over_budget")
                else ("ok" if budget is not None else "-")
            )
            lines.append(
                f"{str(row.get('tenant', '')):<16} "
                f"{row.get('dollars', 0.0):>14.9f} "
                f"{(f'{budget:.4f}' if budget is not None else '-'):>10}"
                f"  {status}"
            )
    if data.top_statements:
        lines.append("")
        lines.append("top queries by billed $")
        lines.append("-" * 23)
        lines.append(
            f"{'fingerprint':<14} {'level':<12} {'calls':>6} "
            f"{'time_s':>12} {'billed_$':>14}  statement"
        )
        for row in data.top_statements:
            statement = str(row.get("statement", ""))
            if len(statement) > 48:
                statement = statement[:45] + "..."
            lines.append(
                f"{str(row.get('fingerprint', '')):<14} "
                f"{str(row.get('level', '')):<12} {row.get('calls', 0):>6} "
                f"{row.get('time_s', 0.0):>12.6f} "
                f"{row.get('dollars', 0.0):>14.9f}  {statement}"
            )
    lines.append("")
    lines.append("alerts")
    lines.append("-" * 6)
    if data.alerts:
        for event in data.alerts:
            lines.append(
                f"t={_fmt(event.time):>9}s {event.state:<9} {event.rule:<22} "
                f"value={_fmt(event.value)}  [{event.detail}]"
            )
    else:
        lines.append("(none)")
    if data.firing:
        lines.append(f"still firing: {', '.join(data.firing)}")
    lines.append("")
    lines.append("autoscaler decisions")
    lines.append("-" * 20)
    if data.audit:
        for entry in data.audit:
            lines.append(
                f"t={_fmt(entry.get('time')):>9}s "
                f"{str(entry.get('action', '')):<10} "
                f"watermark={str(entry.get('watermark', '')):<5} "
                f"trigger={_fmt(entry.get('trigger_value'))} "
                f"vs {_fmt(entry.get('threshold'))}  "
                f"workers {entry.get('workers_before', 0)} "
                f"{entry.get('delta', 0):+d} "
                f"-> target {entry.get('workers_target', 0)}"
            )
    else:
        lines.append("(none)")
    return "\n".join(lines) + "\n"
