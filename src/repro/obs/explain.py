"""Rendering of EXPLAIN ANALYZE output.

The executor (run with ``analyze=True``) produces an
:class:`~repro.engine.executor.OperatorProfile` tree shaped exactly like
the plan tree; :func:`render_analyzed_plan` walks both in parallel and
annotates every plan line with the operator's actual rows, batches, bytes,
GETs, cache hits, peak materialized bytes, and virtual execution time
(cumulative over its subtree, PostgreSQL-style).  Times are deterministic
— modelled from work done, not wall-clock — so the rendered output is
byte-reproducible for a given plan and data.
"""

from __future__ import annotations

from repro.engine.executor import OperatorProfile, QueryStats
from repro.engine.plan import PlanNode

#: Millisecond-flavoured buckets for the per-operator self-time summary —
#: fine enough that micro-operators don't all collapse into one bucket.
_OP_TIME_MS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 10000.0,
)


def _self_time_percentiles(profile: OperatorProfile) -> str:
    """p50/p95/p99 of per-operator *self* time, estimated through the same
    bucket-based quantile the metrics histograms use (so EXPLAIN and the
    dashboard never disagree about what a percentile means)."""
    from repro.obs.metrics import Histogram

    histogram = Histogram("op_self_time_ms", buckets=_OP_TIME_MS_BUCKETS)

    def observe(prof: OperatorProfile) -> None:
        histogram.observe(prof.self_time_s * 1000.0)
        for child in prof.children:
            observe(child)

    observe(profile)
    parts = []
    for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        value = histogram.quantile(q)
        parts.append(f"op_self_ms_{label}={value:.4f}")
    return " ".join(parts)


def _annotation(profile: OperatorProfile) -> str:
    parts = [f"rows={profile.rows_out}", f"time={profile.time_s * 1000:.3f}ms"]
    if profile.rows_in:
        parts.append(f"rows_in={profile.rows_in}")
    if profile.batches:
        parts.append(f"batches={profile.batches}")
    if profile.morsels:
        parts.append(f"morsels={profile.morsels}")
    if profile.bytes_scanned:
        parts.append(f"bytes={profile.bytes_scanned}")
    if profile.get_requests:
        parts.append(f"gets={profile.get_requests}")
    if profile.cache_hits or profile.cache_misses:
        parts.append(f"cache={profile.cache_hits}/{profile.cache_hits + profile.cache_misses}")
    if profile.row_groups_skipped:
        parts.append(f"rg_skipped={profile.row_groups_skipped}")
    if profile.peak_bytes:
        parts.append(f"peak={profile.peak_bytes}")
    return "  [" + " ".join(parts) + "]"


def render_analyzed_plan(
    plan: PlanNode,
    profile: OperatorProfile,
    stats: QueryStats | None = None,
    context: dict | None = None,
    pending: dict | None = None,
) -> str:
    """The plan tree with per-operator actuals, plus a totals footer.

    ``context`` optionally prepends an execution-settings header (e.g.
    ``workers`` and ``batch_size``).  It is a separate opt-in precisely
    because the plan body below is worker-count invariant: rendering the
    same run at 1 or 8 workers differs only in this header line.
    ``pending`` optionally adds a scheduling header (server queue wait,
    admission verdict/reason, VM queue wait) so pending time and
    execution time are attributable side by side.
    """
    lines: list[str] = []
    if context:
        parts = " ".join(f"{key}={value}" for key, value in context.items())
        lines.append(f"execution: {parts}")
    if pending:
        parts = " ".join(f"{key}={value}" for key, value in pending.items())
        lines.append(f"pending: {parts}")

    def walk(node: PlanNode, prof: OperatorProfile, indent: int) -> None:
        pad = "  " * indent
        lines.append(pad + node._describe() + _annotation(prof))
        for child, child_prof in zip(node.children(), prof.children):
            walk(child, child_prof, indent + 1)

    walk(plan, profile, 0)
    if stats is not None:
        lines.append("")
        lines.append(
            "totals: "
            f"bytes_scanned={stats.bytes_scanned} "
            f"rows_scanned={stats.rows_scanned} "
            f"rows_produced={stats.rows_produced} "
            f"get_requests={stats.get_requests} "
            f"cache_hits={stats.cache_hits} "
            f"cache_misses={stats.cache_misses} "
            f"scan_latency_s={stats.scan_latency_s:.6f} "
            + _self_time_percentiles(profile)
        )
    return "\n".join(lines)
