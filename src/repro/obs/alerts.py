"""Burn-rate and threshold alerting over the SLO tracker and registry.

Rules are evaluated on the scrape cadence (the :class:`ScrapeLoop`
invokes :meth:`AlertEngine.evaluate` as a listener), so alert timing is
virtual-clock-deterministic.  Two rule families:

* :class:`BurnRateRule` — the SRE dual-window construction: fire when
  the SLO error budget is burning faster than ``threshold``× the
  sustainable rate over **both** a fast window (catches cliffs quickly)
  and a slow window (filters out blips the fast window alone would page
  on).
* :class:`ThresholdRule` — a static bound on a registry instrument:
  a gauge/counter value (e.g. VM queue depth) or a histogram's mean over
  a trailing window (e.g. mean pending seconds), optionally required to
  hold for ``for_s`` before firing.

State machine per rule: ``ok → pending → firing → ok``, with **flap
suppression**: after any ok↔firing transition the state is held for
``hold_s`` simulated seconds, so an oscillating signal produces one
firing/resolved pair instead of a page storm.  Every transition is
appended to an event log with a deterministic JSONL export.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloTracker
from repro.obs.timeseries import TimeSeriesStore

_Labels = tuple[tuple[str, str], ...]


def labels_of(**labels: object) -> _Labels:
    """Build a rule's label selector: ``labels_of(level="relaxed")``."""
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


@dataclass(frozen=True)
class BurnRateRule:
    """Dual-window error-budget burn-rate rule for one service level."""

    name: str
    level: str
    threshold: float = 6.0  # burn-rate multiple that pages
    fast_window_s: float = 300.0
    slow_window_s: float = 3600.0

    def evaluate(self, context: "AlertContext") -> tuple[bool, float]:
        if context.slo is None:
            return False, 0.0
        fast = context.slo.burn_rate(self.level, self.fast_window_s, context.now)
        slow = context.slo.burn_rate(self.level, self.slow_window_s, context.now)
        # Both windows must burn hot: the fast one for responsiveness,
        # the slow one so a single bad scrape cannot page.
        breached = fast >= self.threshold and slow >= self.threshold
        return breached, fast

    def describe(self) -> str:
        return (
            f"burn_rate({self.level}) >= {self.threshold} over "
            f"{self.fast_window_s:g}s and {self.slow_window_s:g}s"
        )


@dataclass(frozen=True)
class ThresholdRule:
    """Static bound on a registry instrument value."""

    name: str
    metric: str
    threshold: float
    labels: _Labels = ()
    for_s: float = 0.0  # breach must persist this long before firing
    #: "value" reads the instrument directly (gauges, counters);
    #: "histogram_mean" computes sum/count growth over ``window_s`` from
    #: the time-series store — a windowed mean, e.g. of pending seconds.
    kind: str = "value"
    window_s: float = 600.0

    def evaluate(self, context: "AlertContext") -> tuple[bool, float]:
        value = self._value(context)
        if value is None:
            return False, 0.0
        return value > self.threshold, value

    def _value(self, context: "AlertContext") -> float | None:
        if self.kind == "histogram_mean":
            store = context.store
            if store is None:
                return None
            start = context.now - self.window_s
            count = store.delta_sum(
                f"{self.metric}_count", start, context.now, self.labels
            )
            total = store.delta_sum(
                f"{self.metric}_sum", start, context.now, self.labels
            )
            if not count or total is None:
                return None
            return total / count
        instrument = context.registry.get(self.metric)
        if instrument is None:
            return None
        return instrument.value(**dict(self.labels))

    def describe(self) -> str:
        rendered = ",".join(f"{k}={v}" for k, v in self.labels)
        label_part = f"{{{rendered}}}" if rendered else ""
        metric = self.metric + label_part
        if self.kind == "histogram_mean":
            metric = f"mean({metric}, {self.window_s:g}s)"
        suffix = f" for {self.for_s:g}s" if self.for_s else ""
        return f"{metric} > {self.threshold:g}{suffix}"


@dataclass(frozen=True)
class AlertContext:
    """Everything a rule may look at during one evaluation."""

    now: float
    registry: MetricsRegistry
    slo: SloTracker | None = None
    store: TimeSeriesStore | None = None


@dataclass(frozen=True)
class AlertEvent:
    """One state transition of one rule."""

    time: float
    rule: str
    state: str  # "firing" | "resolved"
    value: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "time": self.time,
            "rule": self.rule,
            "state": self.state,
            "value": self.value,
            "detail": self.detail,
        }


@dataclass
class _RuleState:
    firing: bool = False
    breach_since: float | None = None  # for ``for_s`` accumulation
    last_transition: float = -float("inf")
    last_value: float = 0.0


@dataclass
class AlertEngine:
    """Evaluates rules on the scrape cadence and logs transitions."""

    rules: list[BurnRateRule | ThresholdRule]
    registry: MetricsRegistry
    slo: SloTracker | None = None
    store: TimeSeriesStore | None = None
    #: Flap suppression: minimum simulated seconds between state
    #: transitions of one rule.
    hold_s: float = 120.0
    events: list[AlertEvent] = field(default_factory=list)
    _states: dict[str, _RuleState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate alert rule names: {names}")
        for rule in self.rules:
            self._states[rule.name] = _RuleState()

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, now: float) -> None:
        """One evaluation pass (a :class:`ScrapeLoop` listener)."""
        context = AlertContext(
            now=now, registry=self.registry, slo=self.slo, store=self.store
        )
        for rule in self.rules:
            state = self._states[rule.name]
            breached, value = rule.evaluate(context)
            state.last_value = value
            if breached:
                if state.breach_since is None:
                    state.breach_since = now
                ripe = now - state.breach_since >= self._for_s(rule)
                if not state.firing and ripe:
                    self._transition(rule, state, now, True, value)
            else:
                state.breach_since = None
                if state.firing:
                    self._transition(rule, state, now, False, value)

    @staticmethod
    def _for_s(rule: BurnRateRule | ThresholdRule) -> float:
        return getattr(rule, "for_s", 0.0)

    def _transition(
        self,
        rule: BurnRateRule | ThresholdRule,
        state: _RuleState,
        now: float,
        firing: bool,
        value: float,
    ) -> None:
        # Flap suppression: a rule that changed state recently holds it;
        # the condition is simply re-examined on a later scrape.
        if now - state.last_transition < self.hold_s:
            return
        state.firing = firing
        state.last_transition = now
        self.events.append(
            AlertEvent(
                time=now,
                rule=rule.name,
                state="firing" if firing else "resolved",
                value=value,
                detail=rule.describe(),
            )
        )

    # -- inspection / export ------------------------------------------------

    def firing(self) -> list[str]:
        """Names of currently-firing rules, sorted."""
        return sorted(
            name for name, state in self._states.items() if state.firing
        )

    def export_jsonl(self) -> str:
        """The transition log, one JSON object per line, deterministic."""
        lines = [
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")


def default_rules(
    levels: tuple[str, ...] = ("immediate", "relaxed"),
    burn_threshold: float = 6.0,
    fast_window_s: float = 300.0,
    slow_window_s: float = 3600.0,
    queue_depth_threshold: float = 20.0,
    pending_mean_threshold_s: float = 600.0,
) -> list[BurnRateRule | ThresholdRule]:
    """The operator's starting rule set.

    One dual-window burn-rate rule per deadline-carrying level, a VM
    queue-depth bound (the signal that the watermark autoscaler is
    behind demand), and a windowed mean-pending-time bound.
    """
    rules: list[BurnRateRule | ThresholdRule] = [
        BurnRateRule(
            name=f"{level}_burn_rate",
            level=level,
            threshold=burn_threshold,
            fast_window_s=fast_window_s,
            slow_window_s=slow_window_s,
        )
        for level in levels
    ]
    rules.append(
        ThresholdRule(
            name="vm_queue_depth",
            metric="pixels_vm_queue_depth",
            threshold=queue_depth_threshold,
        )
    )
    rules.append(
        ThresholdRule(
            name="pending_time_mean",
            metric="pixels_query_pending_seconds",
            threshold=pending_mean_threshold_s,
            kind="histogram_mean",
            window_s=slow_window_s,
        )
    )
    return rules
