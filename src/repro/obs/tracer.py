"""Per-query span trees on the simulator's virtual clock.

A :class:`Tracer` records one span tree per query (``trace_id`` is the
query id).  Spans are stamped with the *simulated* clock, and span ids
come from a per-tracer counter — so two runs with the same seed produce
byte-identical exported timelines, which is what makes traces usable as
regression artifacts (CI diffs them across PRs).

Parenting is implicit, OpenTelemetry-style: starting a span makes it the
innermost open span of its trace, and subsequent spans of the same trace
become its children until it finishes.  An explicit ``parent`` (or
``parent=ROOT`` for a forced root) overrides this.

The default tracer everywhere is :data:`NOOP_TRACER`: its ``start``
returns a shared inert span and records nothing, so instrumentation has
no cost when observability is off.  Callers guard any *expensive*
attribute computation behind :attr:`Tracer.enabled`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

#: Sentinel for ``Tracer.start(parent=ROOT)``: force a root span even when
#: other spans of the trace are open.
ROOT = object()


@dataclass
class Span:
    """One timed operation within a query's lifecycle.

    ``status`` is ``"open"`` until :meth:`finish` stamps a terminal
    status: ``"ok"``, ``"error"``, ``"retry"`` (a failed attempt that was
    re-tried), or ``"cancelled"``.
    """

    span_id: int
    trace_id: str
    name: str
    start: float
    parent_id: int | None = None
    end: float | None = None
    status: str = "open"
    attributes: dict[str, object] = field(default_factory=dict)
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    @property
    def is_open(self) -> bool:
        return self.end is None

    @property
    def duration_s(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def set(self, **attributes: object) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def finish(self, status: str = "ok", **attributes: object) -> None:
        """Close the span at the current clock time.

        Idempotent: finishing an already-closed span is a no-op, so
        safety-net closers (:meth:`Tracer.end_open`) compose with explicit
        closes regardless of call order.
        """
        if self.end is not None or self._tracer is None:
            return
        self.attributes.update(attributes)
        self.status = status
        self._tracer._finish(self)


class _NoopSpan(Span):
    """The shared inert span returned by :class:`NoopTracer`."""

    def __init__(self) -> None:
        super().__init__(span_id=-1, trace_id="", name="", start=0.0)

    def set(self, **attributes: object) -> "Span":
        return self

    def finish(self, status: str = "ok", **attributes: object) -> None:
        return None


#: Singleton inert span — what every ``NoopTracer.start`` returns.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Records span trees keyed by trace id, on a caller-supplied clock.

    Args:
        clock: Zero-argument callable returning the current time — pass
            the simulator's (``lambda: sim.now``) so span timestamps are
            virtual and reproducible.  Defaults to a frozen clock at 0.
    """

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._next_id = 0
        self._spans: dict[str, list[Span]] = {}
        self._open: dict[str, list[Span]] = {}  # innermost-last stacks

    # -- recording -----------------------------------------------------------

    def start(
        self,
        trace_id: str,
        name: str,
        parent: Span | object | None = None,
        **attributes: object,
    ) -> Span:
        """Open a span; it becomes the innermost open span of its trace."""
        if parent is ROOT:
            parent_id = None
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            stack = self._open.get(trace_id)
            parent_id = stack[-1].span_id if stack else None
        span = Span(
            span_id=self._next_id,
            trace_id=trace_id,
            name=name,
            start=self._clock(),
            parent_id=parent_id,
            attributes=dict(attributes),
            _tracer=self,
        )
        self._next_id += 1
        self._spans.setdefault(trace_id, []).append(span)
        self._open.setdefault(trace_id, []).append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._open.get(span.trace_id)
        if stack and span in stack:
            stack.remove(span)

    def end_open(self, trace_id: str, status: str = "ok", **attributes: object) -> int:
        """Close every still-open span of ``trace_id`` (innermost first).

        The safety net for error, retry-exhaustion, and cancellation
        paths: no code path may leak an open span past query completion.
        Returns the number of spans it closed.
        """
        stack = self._open.get(trace_id, [])
        closed = 0
        while stack:
            stack[-1].finish(status, **attributes)
            closed += 1
        return closed

    # -- inspection ----------------------------------------------------------

    def trace_ids(self) -> list[str]:
        return sorted(self._spans)

    def spans(self, trace_id: str) -> list[Span]:
        """All spans of the trace, in creation order."""
        return list(self._spans.get(trace_id, []))

    def open_spans(self, trace_id: str) -> list[Span]:
        return list(self._open.get(trace_id, []))

    # -- export --------------------------------------------------------------

    def timeline(self, trace_id: str) -> dict:
        """The span forest of ``trace_id`` as nested plain dicts."""
        nodes: dict[int, dict] = {}
        roots: list[dict] = []
        for span in self._spans.get(trace_id, []):
            node = {
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "status": span.status,
                "attributes": dict(span.attributes),
                "children": [],
            }
            nodes[span.span_id] = node
            if span.parent_id is not None and span.parent_id in nodes:
                nodes[span.parent_id]["children"].append(node)
            else:
                roots.append(node)
        return {"trace_id": trace_id, "spans": roots}

    def export_json(self, trace_id: str) -> str:
        """Deterministic JSON timeline — byte-identical across same-seed
        runs (virtual-clock timestamps, counter span ids, sorted keys)."""
        return json.dumps(self.timeline(trace_id), sort_keys=True, indent=2)

    def export_all_json(self) -> str:
        """Every trace, sorted by trace id, as one JSON document."""
        return json.dumps(
            [self.timeline(trace_id) for trace_id in self.trace_ids()],
            sort_keys=True,
            indent=2,
        )


class NoopTracer(Tracer):
    """Tracer that records nothing; ``start`` returns :data:`NOOP_SPAN`.

    This is the zero-cost-when-disabled path: one attribute lookup and
    one call per would-be span, no allocation, no bookkeeping.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def start(
        self,
        trace_id: str,
        name: str,
        parent: Span | object | None = None,
        **attributes: object,
    ) -> Span:
        return NOOP_SPAN

    def end_open(self, trace_id: str, status: str = "ok", **attributes: object) -> int:
        return 0


#: Shared default tracer for un-instrumented components.
NOOP_TRACER = NoopTracer()
