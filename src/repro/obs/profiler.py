"""Deterministic cost/time attribution profiles ("where did my $ go?").

The profiler fuses the two observability trees the system already
records — the tracer's span tree (queue, dispatch, plan, execute, bill)
and the executor's per-operator profile — into one :class:`ProfileNode`
tree and attributes the query's **billed price** to the nodes that earned
it.  Attribution follows the resource split the cost model computes
(:meth:`~repro.turbo.cost.CostModel.attribution`): the bandwidth share is
distributed over each operator's self bytes scanned, the compute share
over self virtual time, the request share over self GET counts, and the
fixed share (startup/merge overhead no operator caused) stays at the
root.

Dollars are handled as **integer nanodollars** with largest-remainder
rounding, so the per-node attributed amounts sum *exactly* — not merely
approximately — to the billed price.  Everything here is derived from
virtual-clock spans and modelled operator times, so the folded-stack and
flame-graph exports are byte-reproducible across same-seed runs; the one
exception is the opt-in ``wall`` view over
:attr:`~repro.engine.executor.OperatorProfile.wall_time_s`, which is
real ``perf_counter`` time and is excluded from determinism tests.

Export formats:

* :func:`render_folded` — flamegraph.pl-compatible folded stacks
  (``frame;frame;frame value``), value in µs for time views and
  nanodollars for the dollar view.
* :mod:`repro.obs.flamegraph` — self-contained SVG flame graphs (no
  scripts, deterministic colors), one for time and one for dollars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.engine.executor import OperatorProfile

if TYPE_CHECKING:  # import cycle: turbo.coordinator imports repro.obs
    from repro.turbo.cost import CostAttribution

NANOS_PER_DOLLAR = 1_000_000_000

#: Span name under which the executor's operator tree is grafted.
EXECUTE_SPAN = "execute"


@dataclass
class ProfileNode:
    """One frame of the attribution tree (a span or a plan operator).

    ``self_*`` values are this node's own share (children excluded);
    cumulative values are derived, never stored, so grafted subtrees can
    never disagree with their parents.
    """

    name: str
    kind: str  # "span" | "operator"
    self_time_s: float = 0.0
    self_wall_s: float = 0.0
    bytes_scanned: int = 0  # self bytes
    get_requests: int = 0  # self GETs
    footer_gets: int = 0  # request-class split of self GETs
    chunk_gets: int = 0
    rows_out: int = 0
    batches: int = 0
    peak_bytes: int = 0
    morsels: int = 0  # self source granules (row groups) processed
    self_nanodollars: int = 0
    children: list["ProfileNode"] = field(default_factory=list)

    # -- derived (cumulative over the subtree) -------------------------------

    @property
    def cum_time_s(self) -> float:
        return self.self_time_s + sum(c.cum_time_s for c in self.children)

    @property
    def cum_wall_s(self) -> float:
        return self.self_wall_s + sum(c.cum_wall_s for c in self.children)

    @property
    def cum_bytes(self) -> int:
        return self.bytes_scanned + sum(c.cum_bytes for c in self.children)

    @property
    def cum_gets(self) -> int:
        return self.get_requests + sum(c.cum_gets for c in self.children)

    @property
    def cum_nanodollars(self) -> int:
        return self.self_nanodollars + sum(
            c.cum_nanodollars for c in self.children
        )

    @property
    def self_dollars(self) -> float:
        return self.self_nanodollars / NANOS_PER_DOLLAR

    @property
    def cum_dollars(self) -> float:
        return self.cum_nanodollars / NANOS_PER_DOLLAR

    def walk(self) -> Iterator["ProfileNode"]:
        """Preorder traversal of the subtree (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def frame(self) -> str:
        """The node's folded-stack frame name (separator-safe)."""
        return self.name.replace(";", ":").replace(" ", "_")


def _span_to_node(span: dict) -> ProfileNode:
    """Convert one tracer timeline span (nested dict) to a ProfileNode.

    A span's self time is its duration minus the children's durations,
    clamped at zero (children can overhang when a safety-net close stamps
    them at the same instant)."""
    children = [_span_to_node(child) for child in span.get("children", [])]
    end = span.get("end")
    duration = max(0.0, (end - span["start"])) if end is not None else 0.0
    child_time = sum(
        max(0.0, (c.get("end") or c["start"]) - c["start"])
        for c in span.get("children", [])
    )
    return ProfileNode(
        name=span["name"],
        kind="span",
        self_time_s=max(0.0, duration - child_time),
        children=children,
    )


def _operator_to_node(profile: OperatorProfile) -> ProfileNode:
    """Convert the executor's operator tree (cumulative counters) to
    ProfileNodes (self counters)."""
    children = [_operator_to_node(child) for child in profile.children]
    self_bytes = profile.bytes_scanned - sum(
        c.bytes_scanned for c in profile.children
    )
    self_gets = profile.get_requests - sum(
        c.get_requests for c in profile.children
    )
    self_footer_gets = profile.footer_gets - sum(
        c.footer_gets for c in profile.children
    )
    self_chunk_gets = profile.chunk_gets - sum(
        c.chunk_gets for c in profile.children
    )
    self_wall = profile.wall_time_s - sum(
        c.wall_time_s for c in profile.children
    )
    self_morsels = profile.morsels - sum(c.morsels for c in profile.children)
    return ProfileNode(
        name=profile.name,
        kind="operator",
        self_time_s=profile.self_time_s,
        self_wall_s=max(0.0, self_wall),
        bytes_scanned=max(0, self_bytes),
        get_requests=max(0, self_gets),
        footer_gets=max(0, self_footer_gets),
        chunk_gets=max(0, self_chunk_gets),
        rows_out=profile.rows_out,
        batches=profile.batches,
        peak_bytes=profile.peak_bytes,
        morsels=max(0, self_morsels),
        children=children,
    )


def _find_last(root: ProfileNode, name: str) -> ProfileNode | None:
    """Last preorder node with ``name`` (the execute span of the final,
    successful attempt when retries produced several)."""
    found = None
    for node in root.walk():
        if node.name == name:
            found = node
    return found


def _distribute(pool: int, weights: list[float]) -> list[int]:
    """Split ``pool`` (an int) proportionally to ``weights``, exactly.

    Largest-remainder rounding: floor every share, then hand the leftover
    units to the largest fractional remainders (ties broken by index, so
    the split is deterministic).  Returns all zeros when the pool or the
    weights are empty — the caller must then park the pool elsewhere.
    """
    total = sum(weights)
    if pool <= 0 or total <= 0:
        return [0] * len(weights)
    exact = [pool * w / total for w in weights]
    shares = [int(x) for x in exact]
    leftover = pool - sum(shares)
    order = sorted(
        range(len(weights)), key=lambda i: (shares[i] - exact[i], i)
    )
    for i in order[:leftover]:
        shares[i] += 1
    return shares


def split_attribution_nanodollars(
    billed: float, attribution: "CostAttribution | None"
) -> tuple[int, list[int]]:
    """Billed $ → integer nanodollars split by resource, exactly.

    The one splitter behind the profiler pools, the statement store, the
    metering ledger, and :meth:`~repro.turbo.cost.CostModel.meter` — a
    single implementation is what lets the billing reconciler demand
    *integer equality* between those surfaces rather than a tolerance.
    Largest-remainder over the cost model's (bandwidth, compute, request,
    fixed) components; when the components carry no weight the whole bill
    parks in the fixed pool, so the four shares always sum to the billed
    total.  Returns ``(billed_nanodollars, [bandwidth, compute, requests,
    fixed])``.
    """
    billed_nano = round(billed * NANOS_PER_DOLLAR)
    if attribution is None:
        return billed_nano, [0, 0, 0, billed_nano]
    components = [  # clamp float residue: a -1e-18 weight must not flip signs
        max(0.0, attribution.bandwidth_dollars),
        max(0.0, attribution.compute_dollars),
        max(0.0, attribution.request_dollars),
        max(0.0, attribution.fixed_dollars),
    ]
    pools = _distribute(billed_nano, components)
    if sum(pools) != billed_nano:  # all-zero attribution: park in fixed
        pools = [0, 0, 0, billed_nano]
    return billed_nano, pools


def _attribute_dollars(
    root: ProfileNode, attribution: "CostAttribution"
) -> int:
    """Distribute the billed price over the tree, in integer nanodollars.

    Four pools, each keyed to the resource that earned it: bandwidth →
    self bytes scanned, compute → self virtual time (operators only, so
    queue waits are never billed as compute), requests → self GETs,
    fixed → the root.  Every pool whose weights are all zero falls back
    to the root, so the invariant Σ self_nanodollars == billed_nanodollars
    holds unconditionally.
    """
    billed_nano, pools = split_attribution_nanodollars(
        attribution.billed, attribution
    )
    operators = [n for n in root.walk() if n.kind == "operator"]
    by_resource = [
        (pools[0], operators, [float(n.bytes_scanned) for n in operators]),
        (pools[1], operators, [n.self_time_s for n in operators]),
        (pools[2], operators, [float(n.get_requests) for n in operators]),
    ]
    root.self_nanodollars += pools[3]
    for pool, nodes, weights in by_resource:
        shares = _distribute(pool, weights)
        granted = sum(shares)
        for node, share in zip(nodes, shares):
            node.self_nanodollars += share
        root.self_nanodollars += pool - granted  # zero-weight fallback
    return billed_nano


@dataclass
class QueryProfile:
    """One query's fused attribution tree plus its dollar decomposition."""

    query_id: str
    root: ProfileNode
    attribution: "CostAttribution"
    billed_nanodollars: int

    # -- folded-stack exports ------------------------------------------------

    def folded_time(self) -> str:
        return render_folded(self.root, "time")

    def folded_dollars(self) -> str:
        return render_folded(self.root, "dollars")

    def folded_wall(self) -> str:
        return render_folded(self.root, "wall")

    # -- flame graphs --------------------------------------------------------

    def flamegraph_time_svg(self, title: str | None = None) -> str:
        from repro.obs.flamegraph import render_flamegraph_svg

        return render_flamegraph_svg(
            self.root, "time", title or f"{self.query_id} — virtual time"
        )

    def flamegraph_dollars_svg(self, title: str | None = None) -> str:
        from repro.obs.flamegraph import render_flamegraph_svg

        return render_flamegraph_svg(
            self.root, "dollars", title or f"{self.query_id} — attributed $"
        )


def _node_value(node: ProfileNode, value: str) -> int:
    if value == "time":
        return round(node.self_time_s * 1_000_000)  # µs
    if value == "wall":
        return round(node.self_wall_s * 1_000_000)  # µs
    if value == "dollars":
        return node.self_nanodollars
    raise ValueError(f"unknown profile value {value!r}")


def render_folded(root: ProfileNode, value: str = "time") -> str:
    """flamegraph.pl-compatible folded stacks.

    One line per tree node with a nonzero self value:
    ``frame;frame;frame <int>`` — µs for ``time``/``wall``, nanodollars
    for ``dollars``.  Deterministic for the virtual views (``time``,
    ``dollars``); ``wall`` is real elapsed time and is not.
    """
    lines: list[str] = []

    def visit(node: ProfileNode, stack: list[str]) -> None:
        frames = stack + [node.frame()]
        val = _node_value(node, value)
        if val > 0:
            lines.append(f"{';'.join(frames)} {val}")
        for child in node.children:
            visit(child, frames)

    visit(root, [])
    if not lines:  # keep the artifact non-empty and parseable
        lines.append(f"{root.frame()} 0")
    return "\n".join(lines) + "\n"


def build_query_profile(
    query_id: str,
    timeline: dict | None,
    operators: OperatorProfile | None,
    attribution: "CostAttribution",
) -> QueryProfile:
    """Fuse a tracer timeline + executor operator profile into one tree
    and attribute the billed price over it.

    Either input may be missing: with no timeline the operator tree is
    the root (under a synthetic ``query`` frame); with no operator
    profile the whole bill parks at the root span.  The operator tree is
    grafted under the *last* ``execute`` span — the final, successful
    attempt when retries recorded several.
    """
    span_root: ProfileNode | None = None
    if timeline is not None and timeline.get("spans"):
        roots = [_span_to_node(span) for span in timeline["spans"]]
        if len(roots) == 1:
            span_root = roots[0]
        else:
            span_root = ProfileNode(name=f"query {query_id}", kind="span")
            span_root.children = roots
    op_root = _operator_to_node(operators) if operators is not None else None
    if span_root is None:
        root = ProfileNode(name=f"query {query_id}", kind="span")
        if op_root is not None:
            root.children.append(op_root)
    else:
        root = span_root
        if op_root is not None:
            anchor = _find_last(root, EXECUTE_SPAN) or root
            anchor.children.append(op_root)
    billed_nano = _attribute_dollars(root, attribution)
    return QueryProfile(
        query_id=query_id,
        root=root,
        attribution=attribution,
        billed_nanodollars=billed_nano,
    )
