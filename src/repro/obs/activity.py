"""Live query activity: the ``pg_stat_activity`` of this system.

Every other observability surface (traces, profiles, statement stats,
the ledger) is post-hoc — it can explain a query only after it finishes.
The :class:`ActivityRegistry` is the live view: a registry of every
submitted query's lifecycle state machine

    queued → admitted → dispatched → executing → merging
                                  → billed | cancelled | rejected | failed

with, for in-flight queries, per-operator progress fractions and an
online projection of the final bill and completion time.

**Progress.**  Execution in this reproduction is *eager under virtual
time*: the executor runs the whole plan at dispatch time and the
simulator then advances the clock by the cost model's modelled duration.
The registry therefore knows, at execution start, the full per-operator
profile (including each scan's row-group morsel count) and the exact
virtual window ``[started_at, started_at + duration_s]``.  A snapshot at
virtual time *t* maps the elapsed window fraction onto the operators:
scans advance morsel by morsel (``floor(f × N) / N`` of their N row
groups), streaming operators advance continuously, and blocking sinks
report a phase (``accumulate`` while upstream work dominates, ``emit``
once only their own work remains).  Progress is clamped to ``[0, 1]``
and frozen at the terminal transition, so it never exceeds 1.0 and a
cancelled query keeps the fraction it died at.

**Projection.**  The estimator blends two sources in exact integer
nanodollars: the statement-store *prior* (mean bill of past calls of the
same fingerprint × level × tenant, available from submission time) and
the *execution-known* final (computable from the scanned bytes the
moment execution starts).  The blend weight moves linearly from the
prior to the known final as the window elapses, so the projection's
terminal value equals the billed price exactly; the resource split uses
the shared largest-remainder splitter so the four axes always sum to the
projected total.  Every billed query appends an estimated-vs-actual
:class:`ProjectionRecord`, making estimator quality itself measurable
(the C5 bench gates its MAPE).

**Guards.**  :class:`ProjectionGuard` turns projections into action: a
query whose projected spend exceeds its tenant's remaining soft budget,
or whose service-level deadline has passed while it is still pending,
trips a rule.  Tripping always emits an alert-engine event and an
audit-log entry (mirroring the autoscaler's decision log); the optional
``downgrade``/``cancel`` actions are opt-in per rule.  Cancellations go
through the server's normal cancel path, so the ledger voids the charges
and the reconciler still balances.

Everything here is passive — no simulator events are scheduled — and
derived from virtual quantities only, so snapshots and exports are
byte-identical across runs and invariant to ``REPRO_WORKERS``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.engine.pipeline import BLOCKING_PLAN_NODES
from repro.obs.profiler import NANOS_PER_DOLLAR, _distribute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.executor import OperatorProfile, QueryStats
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spend import SpendAccountant
    from repro.obs.statements import StatementStore

#: Lifecycle states, in rough progression order.  ``merging`` is the CF
#: tail of ``executing`` (the VM-side merge of function results) and is
#: derived from the window position rather than stored.
LIFECYCLE_STATES = (
    "queued",
    "admitted",
    "dispatched",
    "executing",
    "merging",
    "billed",
    "cancelled",
    "rejected",
    "failed",
)

TERMINAL_STATES = frozenset({"billed", "cancelled", "rejected", "failed"})

#: Resource axes of a projection split — same order as the ledger's.
RESOURCE_AXES = ("bandwidth", "compute", "requests", "fixed")


@dataclass(frozen=True)
class OperatorWork:
    """One operator's progress basis, captured at execution start."""

    name: str
    depth: int
    #: Row-group morsels in this operator (scans only; 0 elsewhere).
    morsels: int
    blocking: bool
    #: Window fraction at which a blocking sink flips from accumulating
    #: input to emitting output (its upstream share of subtree time).
    emit_at: float


@dataclass(frozen=True)
class ProjectionRecord:
    """One billed query's estimated-vs-actual accuracy record."""

    query_id: str
    tenant: str
    level: str | None
    estimated_nanodollars: int
    actual_nanodollars: int
    #: Where the estimate came from: ``prior`` (statement history, known
    #: at submission) or ``execution`` (first-seen statement; the
    #: exec-start projection from scanned bytes).
    source: str

    @property
    def abs_error_nanodollars(self) -> int:
        return abs(self.estimated_nanodollars - self.actual_nanodollars)

    @property
    def ape(self) -> float:
        """Absolute percentage error (0.0 when the bill was $0)."""
        if self.actual_nanodollars == 0:
            return 0.0 if self.estimated_nanodollars == 0 else 1.0
        return self.abs_error_nanodollars / self.actual_nanodollars

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "tenant": self.tenant,
            "level": self.level,
            "estimated_nanodollars": self.estimated_nanodollars,
            "actual_nanodollars": self.actual_nanodollars,
            "abs_error_nanodollars": self.abs_error_nanodollars,
            "ape": round(self.ape, 9),
            "source": self.source,
        }


@dataclass
class ActivityEntry:
    """The registry's record of one query's live state."""

    query_id: str
    tenant: str = "default"
    level: str | None = None
    requested_level: str | None = None
    fingerprint: str | None = None
    state: str = "admitted"
    submitted_at: float = 0.0
    deadline_s: float | None = None
    admission: str = "admit"
    history: list[tuple[str, float]] = field(default_factory=list)
    venue: str | None = None
    exec_started_at: float | None = None
    exec_duration_s: float | None = None
    #: Window fraction where the CF merge phase begins (CF venue only).
    merge_at: float | None = None
    operators: list[OperatorWork] = field(default_factory=list)
    prior_nanodollars: int | None = None
    prior_time_s: float | None = None
    prior_axes: dict[str, int] | None = None
    #: The exec-start-known final bill (scanned bytes × the level rate).
    final_nanodollars: int | None = None
    final_axes: dict[str, int] | None = None
    #: The pre-completion estimate the accuracy record is judged on.
    estimate_nanodollars: int | None = None
    estimate_source: str | None = None
    actual_nanodollars: int | None = None
    actual_axes: dict[str, int] | None = None
    terminal_at: float | None = None
    detail: str | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


def _flatten_operators(profile: "OperatorProfile") -> list[OperatorWork]:
    """Pre-order walk of the profile tree into progress descriptors."""
    work: list[OperatorWork] = []

    def walk(node: "OperatorProfile", depth: int) -> None:
        blocking = node.name in BLOCKING_PLAN_NODES
        morsels = node.morsels if not node.children else 0
        emit_at = 1.0
        if blocking and node.time_s > 0:
            # The sink accumulates while its subtree (children) works and
            # emits during its own self time — the tail of its window.
            emit_at = max(0.0, min(1.0, 1.0 - node.self_time_s / node.time_s))
        work.append(
            OperatorWork(
                name=node.name,
                depth=depth,
                morsels=morsels,
                blocking=blocking,
                emit_at=round(emit_at, 9),
            )
        )
        for child in node.children:
            walk(child, depth + 1)

    walk(profile, 0)
    return work


def _split_axes(total: int, weights: dict[str, int] | None) -> dict[str, int]:
    """Split ``total`` nanodollars over the resource axes in proportion to
    ``weights`` (largest-remainder, exact).  With no usable weights the
    whole amount parks in ``fixed`` — mirroring the cost model's rule for
    queries whose resource decomposition is unknown."""
    if total < 0:
        total = 0
    if weights:
        pools = _distribute(
            total, [float(weights.get(axis, 0)) for axis in RESOURCE_AXES]
        )
        if sum(pools) == total:
            return dict(zip(RESOURCE_AXES, pools))
    return {axis: (total if axis == "fixed" else 0) for axis in RESOURCE_AXES}


class ActivityRegistry:
    """Live registry of every submitted query's lifecycle + projection.

    The query server drives the state machine (submission, queueing,
    dispatch, billing, cancellation); the coordinator registers the
    execution window the moment a venue starts running the plan.  All
    methods are passive bookkeeping — nothing here schedules simulator
    events or perturbs execution.
    """

    enabled: bool = True

    def __init__(self, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._entries: dict[str, ActivityEntry] = {}
        self._records: list[ProjectionRecord] = []
        # Bound by the query server (the one component that knows prices).
        self._pricer: (
            Callable[["QueryStats", str, str], tuple[int, dict[str, int]]] | None
        ) = None
        self._statements: "StatementStore | None" = None
        self._projected_series: set[str] = set()

    # -- wiring ---------------------------------------------------------------

    def bind(
        self,
        pricer: (
            Callable[["QueryStats", str, str], tuple[int, dict[str, int]]] | None
        ) = None,
        statements: "StatementStore | None" = None,
    ) -> None:
        """Attach the server-owned pricing callback
        (``(stats, level, venue) → (nanodollars, axes)``) and the
        statement store the estimator draws priors from."""
        if pricer is not None:
            self._pricer = pricer
        if statements is not None and statements.enabled:
            self._statements = statements

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Register the live-activity gauges (collector-refreshed, so the
        scrape loop sees current state; label sets ride behind the
        registry's cardinality guard)."""
        from repro.obs.metrics import (
            ACTIVITY_PROJECTED_METRIC,
            ACTIVITY_QUERIES_METRIC,
        )

        if not registry.enabled:
            return
        gauge_states = registry.gauge(
            ACTIVITY_QUERIES_METRIC,
            "Queries in the live activity registry, by lifecycle state",
        )
        gauge_projected = registry.gauge(
            ACTIVITY_PROJECTED_METRIC,
            "Projected final bill of in-flight queries, by tenant ($)",
        )

        def collect() -> None:
            now = self._clock()
            counts = {state: 0 for state in LIFECYCLE_STATES}
            projected: dict[str, int] = {}
            for entry in self._entries.values():
                counts[self._display_state(entry, now)] += 1
                if entry.terminal:
                    continue
                projection = self._projected_nanodollars(entry, now)
                if projection is not None:
                    projected[entry.tenant] = (
                        projected.get(entry.tenant, 0) + projection
                    )
            for state, count in counts.items():
                gauge_states.set(count, state=state)
            for tenant, nanos in sorted(projected.items()):
                gauge_projected.set(nanos / NANOS_PER_DOLLAR, tenant=tenant)
            for tenant in self._projected_series - set(projected):
                gauge_projected.set(0.0, tenant=tenant)
            self._projected_series = set(projected)

        registry.add_collector(collect)

    # -- state machine --------------------------------------------------------

    def _transition(self, entry: ActivityEntry, state: str) -> None:
        now = self._clock()
        entry.state = state
        entry.history.append((state, round(now, 9)))
        if state in TERMINAL_STATES:
            entry.terminal_at = now

    def begin(
        self,
        query_id: str,
        *,
        tenant: str = "default",
        level: str | None = None,
        requested_level: str | None = None,
        fingerprint: str | None = None,
        deadline_s: float | None = None,
        admission: str = "admit",
    ) -> ActivityEntry:
        """Admit a submission into the registry (state ``admitted``)."""
        entry = ActivityEntry(
            query_id=query_id,
            tenant=tenant,
            level=level,
            requested_level=requested_level,
            fingerprint=fingerprint,
            submitted_at=self._clock(),
            deadline_s=deadline_s,
            admission=admission,
        )
        self._entries[query_id] = entry
        self._transition(entry, "admitted")
        self._refresh_prior(entry)
        return entry

    def _refresh_prior(self, entry: ActivityEntry) -> None:
        """Pull the statement-store prior for this fingerprint × level ×
        tenant (the queued-state projection and the blend's anchor)."""
        entry.prior_nanodollars = None
        entry.prior_time_s = None
        entry.prior_axes = None
        if (
            self._statements is None
            or entry.fingerprint is None
            or entry.level is None
        ):
            return
        stats = self._statements.entry(
            entry.fingerprint, entry.level, entry.tenant
        )
        if stats is None or stats.calls == 0:
            return
        entry.prior_nanodollars = round(stats.nanodollars / stats.calls)
        entry.prior_time_s = stats.mean_time_s
        entry.prior_axes = {
            "bandwidth": stats.bandwidth_nanodollars,
            "compute": stats.compute_nanodollars,
            "requests": stats.request_nanodollars,
            "fixed": stats.fixed_nanodollars,
        }
        if entry.estimate_nanodollars is None or entry.estimate_source == "prior":
            entry.estimate_nanodollars = entry.prior_nanodollars
            entry.estimate_source = "prior"

    def mark_queued(self, query_id: str) -> None:
        entry = self._entries.get(query_id)
        if entry is not None and not entry.terminal:
            self._transition(entry, "queued")

    def mark_dispatched(self, query_id: str) -> None:
        entry = self._entries.get(query_id)
        if entry is not None and not entry.terminal:
            self._transition(entry, "dispatched")

    def downgrade(self, query_id: str, level: str, reason: str) -> None:
        """Record a held query's level change (admission or guard); the
        prior refreshes because the bill now accrues at the new rate."""
        entry = self._entries.get(query_id)
        if entry is None or entry.terminal:
            return
        entry.level = level
        entry.detail = reason
        self._refresh_prior(entry)

    def begin_execution(
        self,
        query_id: str,
        *,
        venue: str,
        duration_s: float,
        profile: "OperatorProfile | None" = None,
        stats: "QueryStats | None" = None,
        merge_at: float | None = None,
    ) -> None:
        """The coordinator's hook: a venue started running the plan over
        the virtual window ``[now, now + duration_s]``.  Unknown query
        ids (coordinator-only executions never submitted through the
        server) are ignored — the registry tracks billed work."""
        entry = self._entries.get(query_id)
        if entry is None or entry.terminal:
            return
        entry.venue = venue
        entry.exec_started_at = self._clock()
        entry.exec_duration_s = max(0.0, duration_s)
        entry.merge_at = merge_at
        entry.operators = (
            _flatten_operators(profile) if profile is not None else []
        )
        if (
            stats is not None
            and entry.level is not None
            and self._pricer is not None
        ):
            nanos, axes = self._pricer(stats, entry.level, venue)
            entry.final_nanodollars = nanos
            entry.final_axes = axes
            if entry.estimate_nanodollars is None:
                # First-seen statement: the exec-start projection is the
                # best pre-completion estimate the system ever had.
                entry.estimate_nanodollars = nanos
                entry.estimate_source = "execution"
        self._transition(entry, "executing")

    def finish_billed(
        self,
        query_id: str,
        billed_nanodollars: int,
        axes: dict[str, int] | None = None,
    ) -> ProjectionRecord | None:
        """Terminal ``billed``: record the actual bill and append the
        estimated-vs-actual accuracy record (returned for journalling)."""
        entry = self._entries.get(query_id)
        if entry is None or entry.terminal:
            return None
        entry.actual_nanodollars = billed_nanodollars
        entry.actual_axes = dict(axes) if axes is not None else None
        self._transition(entry, "billed")
        if entry.estimate_nanodollars is None:
            return None
        record = ProjectionRecord(
            query_id=query_id,
            tenant=entry.tenant,
            level=entry.level,
            estimated_nanodollars=entry.estimate_nanodollars,
            actual_nanodollars=billed_nanodollars,
            source=entry.estimate_source or "execution",
        )
        self._records.append(record)
        return record

    def finish_cancelled(self, query_id: str, reason: str = "cancelled") -> None:
        entry = self._entries.get(query_id)
        if entry is not None and not entry.terminal:
            entry.detail = reason
            self._transition(entry, "cancelled")

    def finish_failed(self, query_id: str, error: str | None = None) -> None:
        entry = self._entries.get(query_id)
        if entry is not None and not entry.terminal:
            entry.detail = error
            self._transition(entry, "failed")

    def finish_rejected(self, query_id: str, reason: str | None = None) -> None:
        entry = self._entries.get(query_id)
        if entry is not None and not entry.terminal:
            entry.detail = reason
            self._transition(entry, "rejected")

    # -- progress + projection ------------------------------------------------

    def entry(self, query_id: str) -> ActivityEntry | None:
        return self._entries.get(query_id)

    def entries(self) -> list[ActivityEntry]:
        """All entries in submission order (deterministic)."""
        return list(self._entries.values())

    def live_entries(self) -> list[ActivityEntry]:
        return [e for e in self._entries.values() if not e.terminal]

    def _window_fraction(self, entry: ActivityEntry, now: float) -> float:
        """Elapsed fraction of the execution window, clamped to [0, 1]
        and frozen at the terminal timestamp."""
        if entry.exec_started_at is None:
            return 0.0
        end = now
        if entry.terminal_at is not None:
            end = min(end, entry.terminal_at)
        duration = entry.exec_duration_s or 0.0
        if duration <= 0.0:
            return 1.0
        fraction = (end - entry.exec_started_at) / duration
        return min(1.0, max(0.0, fraction))

    def _display_state(self, entry: ActivityEntry, now: float) -> str:
        """The lifecycle state a snapshot reports — ``merging`` is the CF
        window's tail, derived from the fraction rather than stored."""
        if (
            entry.state == "executing"
            and entry.merge_at is not None
            and self._window_fraction(entry, now) >= entry.merge_at
        ):
            return "merging"
        return entry.state

    def _operator_rows(self, entry: ActivityEntry, fraction: float) -> list[dict]:
        rows: list[dict] = []
        for op in entry.operators:
            row: dict = {"operator": op.name, "depth": op.depth}
            if op.morsels > 0:
                done = (
                    op.morsels
                    if fraction >= 1.0
                    else min(op.morsels, int(fraction * op.morsels))
                )
                row["morsels_done"] = done
                row["morsels_total"] = op.morsels
                row["progress"] = round(done / op.morsels, 9)
            elif op.blocking:
                row["progress"] = round(fraction, 9)
                if fraction >= 1.0:
                    row["phase"] = "done"
                elif fraction < op.emit_at:
                    row["phase"] = "accumulate"
                else:
                    row["phase"] = "emit"
            else:
                row["progress"] = round(fraction, 9)
            rows.append(row)
        return rows

    def _projected_nanodollars(
        self, entry: ActivityEntry, now: float
    ) -> int | None:
        """The current point estimate of the final bill, in nanodollars.

        Terminal billed → the actual bill (exactly).  Executing → the
        prior blended linearly into the exec-start-known final as the
        window elapses.  Pending → the prior alone (None if this
        statement has never been seen)."""
        if entry.actual_nanodollars is not None:
            return entry.actual_nanodollars
        fraction = self._window_fraction(entry, now)
        prior = entry.prior_nanodollars
        final = entry.final_nanodollars
        if final is not None:
            if prior is None:
                return final
            return prior + round((final - prior) * fraction)
        return prior

    def _projection_row(self, entry: ActivityEntry, now: float) -> dict | None:
        total = self._projected_nanodollars(entry, now)
        if total is None:
            return None
        if entry.actual_nanodollars is not None:
            weights, source = entry.actual_axes, "billed"
        elif entry.final_nanodollars is not None:
            weights = entry.final_axes
            source = "blended" if entry.prior_nanodollars is not None else "execution"
        else:
            weights, source = entry.prior_axes, "prior"
        row: dict = {
            "nanodollars": total,
            "dollars": round(total / NANOS_PER_DOLLAR, 12),
            "by_resource": _split_axes(total, weights),
            "source": source,
        }
        remaining = self._remaining_s(entry, now)
        if remaining is not None:
            row["remaining_s"] = round(remaining, 9)
        return row

    def _remaining_s(self, entry: ActivityEntry, now: float) -> float | None:
        if entry.terminal:
            return 0.0
        if entry.exec_started_at is not None and entry.exec_duration_s is not None:
            return max(
                0.0, entry.exec_started_at + entry.exec_duration_s - now
            )
        # Pending: the prior's mean execution time is the only basis (the
        # remaining queue wait is the scheduler's call, not the query's).
        return entry.prior_time_s

    # -- snapshots ------------------------------------------------------------

    def snapshot(self, include_terminal: bool = True) -> dict:
        """JSON-ready live view: one row per query in submission order,
        plus lifecycle-state counts.  Deterministic under the sim clock
        and invariant to the worker count."""
        now = self._clock()
        queries: list[dict] = []
        counts = {state: 0 for state in LIFECYCLE_STATES}
        for entry in self._entries.values():
            state = self._display_state(entry, now)
            counts[state] += 1
            if entry.terminal and not include_terminal:
                continue
            fraction = self._window_fraction(entry, now)
            row: dict = {
                "query_id": entry.query_id,
                "state": state,
                "tenant": entry.tenant,
                "level": entry.level,
                "venue": entry.venue,
                "submitted_at": round(entry.submitted_at, 9),
                "progress": round(fraction, 9),
            }
            if entry.requested_level and entry.requested_level != entry.level:
                row["requested_level"] = entry.requested_level
            if entry.deadline_s is not None:
                row["deadline_s"] = entry.deadline_s
            if entry.admission != "admit":
                row["admission"] = entry.admission
            if not entry.terminal:
                row["pending_s"] = round(
                    (entry.exec_started_at or now) - entry.submitted_at, 9
                )
            if entry.operators and not entry.terminal:
                row["operators"] = self._operator_rows(entry, fraction)
            projection = self._projection_row(entry, now)
            if projection is not None:
                row["projection"] = projection
            if entry.actual_nanodollars is not None:
                row["actual_nanodollars"] = entry.actual_nanodollars
                if entry.estimate_nanodollars is not None:
                    row["estimated_nanodollars"] = entry.estimate_nanodollars
            if entry.detail:
                row["detail"] = entry.detail
            queries.append(row)
        return {
            "generated_at": round(now, 9),
            "states": {s: c for s, c in counts.items() if c},
            "queries": queries,
        }

    def export_json(self, include_terminal: bool = True) -> str:
        return (
            json.dumps(
                self.snapshot(include_terminal), sort_keys=True, indent=2
            )
            + "\n"
        )

    # -- estimator accuracy ---------------------------------------------------

    def projection_records(self) -> list[ProjectionRecord]:
        return list(self._records)

    def projection_report(self) -> dict:
        """Estimator quality over every billed query: mean/max absolute
        percentage error plus the per-source split.  ``mape`` is what the
        C5 perf gate holds under its committed threshold."""
        records = self._records
        by_source: dict[str, int] = {}
        for record in records:
            by_source[record.source] = by_source.get(record.source, 0) + 1
        apes = [record.ape for record in records]
        return {
            "queries": len(records),
            "mape": round(sum(apes) / len(apes), 9) if apes else 0.0,
            "max_ape": round(max(apes), 9) if apes else 0.0,
            "by_source": dict(sorted(by_source.items())),
            "records": [record.to_dict() for record in records],
        }

    def export_projection_json(self) -> str:
        return (
            json.dumps(self.projection_report(), sort_keys=True, indent=2)
            + "\n"
        )


class NoopActivityRegistry(ActivityRegistry):
    """Inert twin: every hook is a no-op, every view is empty."""

    enabled: bool = False

    def __init__(self) -> None:
        super().__init__()

    def bind(self, pricer=None, statements=None) -> None:  # type: ignore[override]
        pass

    def bind_metrics(self, registry) -> None:  # type: ignore[override]
        pass

    def begin(self, query_id, **kwargs):  # type: ignore[override]
        return None

    def mark_queued(self, query_id) -> None:  # type: ignore[override]
        pass

    def mark_dispatched(self, query_id) -> None:  # type: ignore[override]
        pass

    def downgrade(self, query_id, level, reason) -> None:  # type: ignore[override]
        pass

    def begin_execution(self, query_id, **kwargs) -> None:  # type: ignore[override]
        pass

    def finish_billed(self, query_id, billed_nanodollars, axes=None):  # type: ignore[override]
        return None

    def finish_cancelled(self, query_id, reason="cancelled") -> None:  # type: ignore[override]
        pass

    def finish_failed(self, query_id, error=None) -> None:  # type: ignore[override]
        pass

    def finish_rejected(self, query_id, reason=None) -> None:  # type: ignore[override]
        pass

    def export_json(self, include_terminal: bool = True) -> str:  # type: ignore[override]
        return ""

    def export_projection_json(self) -> str:  # type: ignore[override]
        return ""


# -- projection-driven guards -------------------------------------------------


#: Guard actions, in increasing severity.  ``alert`` only records and
#: alerts; ``downgrade`` demotes a *held* relaxed query to best-effort;
#: ``cancel`` cancels through the server (the ledger voids the charges).
GUARD_ACTIONS = ("alert", "downgrade", "cancel")


@dataclass(frozen=True)
class GuardPolicy:
    """Knobs of the projection guard.

    A rule is active when its action is set; ``alert`` is the safe
    default (observe and page, change nothing).  The mutating actions
    are deliberately opt-in: ``downgrade`` applies only to queries still
    held in a server queue (a running query cannot change its rate), and
    falls back to alert-only otherwise; ``cancel`` applies anywhere
    pre-terminal.
    """

    #: Action when a query's projected bill exceeds its tenant's
    #: remaining soft budget (None disables the rule).
    budget_action: str | None = "alert"
    #: Action when a query's service-level deadline has passed while it
    #: is still pending (None disables the rule).
    deadline_action: str | None = "alert"

    def __post_init__(self) -> None:
        for action in (self.budget_action, self.deadline_action):
            if action is not None and action not in GUARD_ACTIONS:
                raise ValueError(
                    f"unknown guard action {action!r}; expected {GUARD_ACTIONS}"
                )


@dataclass(frozen=True)
class GuardDecision:
    """One audit-log entry — the guard's analogue of the autoscaler's
    :class:`~repro.turbo.vm_cluster.ScalingDecision`."""

    time: float
    query_id: str
    tenant: str
    level: str | None
    rule: str  # budget | deadline
    action: str  # alert | downgrade | cancel
    applied: bool
    reason: str
    projected_nanodollars: int | None = None
    limit_nanodollars: int | None = None
    deadline_s: float | None = None

    def to_dict(self) -> dict:
        payload: dict = {
            "time": round(self.time, 9),
            "query_id": self.query_id,
            "tenant": self.tenant,
            "level": self.level,
            "rule": self.rule,
            "action": self.action,
            "applied": self.applied,
            "reason": self.reason,
        }
        if self.projected_nanodollars is not None:
            payload["projected_nanodollars"] = self.projected_nanodollars
        if self.limit_nanodollars is not None:
            payload["limit_nanodollars"] = self.limit_nanodollars
        if self.deadline_s is not None:
            payload["deadline_s"] = self.deadline_s
        return payload


class ProjectionGuard:
    """Evaluates projections against budgets and deadlines on the
    scheduler tick; decisions are audit-logged and alert-emitting, and
    the opt-in actions route through the server's own downgrade/cancel
    paths (so billing invariants hold by construction)."""

    def __init__(
        self,
        policy: GuardPolicy,
        registry: ActivityRegistry,
        spend: "SpendAccountant",
        *,
        canceller: Callable[[str], bool] | None = None,
        downgrader: Callable[[str, str], bool] | None = None,
        alert_sink: Callable[[object], None] | None = None,
        on_decision: Callable[[GuardDecision], None] | None = None,
    ) -> None:
        self.policy = policy
        self._registry = registry
        self._spend = spend
        self._canceller = canceller
        self._downgrader = downgrader
        #: Where guard alerts go (an ``AlertEvent`` consumer); public so
        #: the embedding system can attach its alert engine after wiring.
        self.alert_sink = alert_sink
        self._on_decision = on_decision
        self.audit_log: list[GuardDecision] = []
        self._fired: set[tuple[str, str]] = set()

    def evaluate(self, now: float) -> list[GuardDecision]:
        """One guard pass over the live entries; at most one decision per
        (query, rule) for the query's lifetime."""
        decisions: list[GuardDecision] = []
        budgets = self._spend.budgets() if self._spend.enabled else {}
        for entry in self._registry.live_entries():
            if self.policy.budget_action is not None and entry.tenant in budgets:
                decision = self._check_budget(
                    entry, now, budgets[entry.tenant]
                )
                if decision is not None:
                    decisions.append(decision)
            if self.policy.deadline_action is not None:
                decision = self._check_deadline(entry, now)
                if decision is not None:
                    decisions.append(decision)
        return decisions

    def _check_budget(
        self, entry: ActivityEntry, now: float, budget_dollars: float
    ) -> GuardDecision | None:
        if (entry.query_id, "budget") in self._fired:
            return None
        projected = self._registry._projected_nanodollars(entry, now)
        if projected is None:
            return None
        remaining = (
            round(budget_dollars * NANOS_PER_DOLLAR)
            - self._spend.tenant_nanodollars(entry.tenant)
        )
        if projected <= remaining:
            return None
        reason = (
            f"projected {projected} nanodollars exceeds tenant "
            f"{entry.tenant!r} remaining budget {remaining}"
        )
        return self._decide(
            entry,
            now,
            rule="budget",
            action=self.policy.budget_action or "alert",
            reason=reason,
            projected_nanodollars=projected,
            limit_nanodollars=remaining,
        )

    def _check_deadline(
        self, entry: ActivityEntry, now: float
    ) -> GuardDecision | None:
        if (entry.query_id, "deadline") in self._fired:
            return None
        if entry.deadline_s is None or entry.exec_started_at is not None:
            # Deadlines bound pending time; once executing the SLO
            # tracker owns the verdict.
            return None
        overdue = now - entry.submitted_at - entry.deadline_s
        if overdue <= 0:
            return None
        reason = (
            f"still pending {round(overdue, 9)}s past its "
            f"{entry.deadline_s}s {entry.level} deadline"
        )
        return self._decide(
            entry,
            now,
            rule="deadline",
            action=self.policy.deadline_action or "alert",
            reason=reason,
            deadline_s=entry.deadline_s,
        )

    def _decide(
        self,
        entry: ActivityEntry,
        now: float,
        *,
        rule: str,
        action: str,
        reason: str,
        projected_nanodollars: int | None = None,
        limit_nanodollars: int | None = None,
        deadline_s: float | None = None,
    ) -> GuardDecision:
        applied = True
        if action == "downgrade":
            held_relaxed = entry.state == "queued" and entry.level == "relaxed"
            if held_relaxed and self._downgrader is not None:
                applied = bool(
                    self._downgrader(entry.query_id, f"guard_{rule}")
                )
            else:
                # A running (or non-relaxed) query cannot change rate —
                # record the trip, act on nothing.
                action, applied = "alert", True
        elif action == "cancel":
            applied = (
                bool(self._canceller(entry.query_id))
                if self._canceller is not None
                else False
            )
        decision = GuardDecision(
            time=now,
            query_id=entry.query_id,
            tenant=entry.tenant,
            level=entry.level,
            rule=rule,
            action=action,
            applied=applied,
            reason=reason,
            projected_nanodollars=projected_nanodollars,
            limit_nanodollars=limit_nanodollars,
            deadline_s=deadline_s,
        )
        self._fired.add((entry.query_id, rule))
        self.audit_log.append(decision)
        if self.alert_sink is not None:
            from repro.obs.alerts import AlertEvent

            value = (
                projected_nanodollars / NANOS_PER_DOLLAR
                if projected_nanodollars is not None
                else 0.0
            )
            self.alert_sink(
                AlertEvent(
                    time=now,
                    rule=f"projection_guard_{rule}",
                    state="firing",
                    value=value,
                    detail=f"{entry.query_id}: {reason} (action={action})",
                )
            )
        if self._on_decision is not None:
            self._on_decision(decision)
        return decision

    def audit(self) -> list[dict]:
        """The decision log as JSON-ready dicts, in decision order."""
        return [decision.to_dict() for decision in self.audit_log]

    def export_jsonl(self) -> str:
        lines = [
            json.dumps(payload, sort_keys=True) for payload in self.audit()
        ]
        return "\n".join(lines) + ("\n" if lines else "")
