"""The query journal: a trace-correlated JSONL event log with tail-based
slow-query capture.

Every journal record carries the query id, its trace/root-span ids, the
statement fingerprint, and the service level, so a journal line joins
the tracer's timeline, the SLO records, and the statement store without
re-deriving anything.  The :class:`CapturePolicy` decides — at
completion time, when the bill and slack are known — whether the query's
full evidence (the profiler's attribution tree plus its time flame
graph) is attached to the journal: deadline violations, errors, bills
over a $ threshold, and queries landing in the slowest-N ring all
qualify, so when an SLO page fires the diagnosis is already collected.

Records are appended in virtual-clock order from deterministic
callbacks, so :meth:`QueryJournal.export_jsonl` is byte-identical across
runs and invariant to ``REPRO_WORKERS``.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.obs.profdiff import profile_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profiler import QueryProfile


@dataclass(frozen=True)
class CapturePolicy:
    """When to attach full profile evidence to a journal record."""

    #: Capture queries whose deadline slack went negative.
    capture_violations: bool = True
    #: Capture queries that failed.
    capture_errors: bool = True
    #: Capture queries billed at or above this many dollars (None: off).
    dollar_threshold: float | None = None
    #: Capture queries among the N slowest completed so far (0: off).
    slowest_n: int = 8
    #: Capture queries that ran at a lower level than requested —
    #: admission-pressure and projection-guard downgrades otherwise leave
    #: only span attributes, no profile evidence (off by default).
    capture_downgrades: bool = False
    #: Hard cap on stored captures (each holds a tree + an SVG); beyond
    #: it the journal records the drop instead of the evidence.
    max_captures: int = 64


class QueryJournal:
    """Structured event log + capture ring for one workload run."""

    enabled: bool = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        policy: CapturePolicy | None = None,
    ) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.policy = policy if policy is not None else CapturePolicy()
        self._records: list[dict] = []
        self._captures: list[dict] = []
        self._slow_ring: list[float] = []  # N slowest durations seen
        self._dropped_captures = 0

    # -- events -------------------------------------------------------------

    def event(
        self,
        event: str,
        query_id: str,
        *,
        trace_id: str | None = None,
        span_id: int | None = None,
        fingerprint: str | None = None,
        level: str | None = None,
        **attrs: object,
    ) -> dict:
        """Append one journal record and return it (callers may attach
        evidence keys before export)."""
        record: dict = {
            "ts": round(self._clock(), 9),
            "event": event,
            "query_id": query_id,
            "trace_id": trace_id if trace_id is not None else query_id,
            "span_id": span_id,
            "fingerprint": fingerprint,
            "level": level,
        }
        for name in sorted(attrs):
            record[name] = attrs[name]
        self._records.append(record)
        return record

    # -- capture policy -----------------------------------------------------

    def _lands_in_slow_ring(self, time_s: float) -> bool:
        """Track the N slowest completions; True when this one joins."""
        ring = self._slow_ring
        n = self.policy.slowest_n
        qualifies = len(ring) < n or time_s > ring[0]
        bisect.insort(ring, time_s)
        if len(ring) > n:
            ring.pop(0)
        return qualifies

    def capture_reasons(
        self,
        *,
        time_s: float | None,
        billed: float | None,
        slack_s: float | None,
        error: bool,
        downgraded: bool = False,
    ) -> list[str]:
        """The policy clauses this completion triggers (empty: no capture).

        Must be called exactly once per completion — it also feeds the
        slowest-N ring."""
        policy = self.policy
        reasons: list[str] = []
        if error and policy.capture_errors:
            reasons.append("error")
        if downgraded and policy.capture_downgrades:
            reasons.append("downgrade")
        if (
            slack_s is not None
            and slack_s < 0
            and policy.capture_violations
        ):
            reasons.append("deadline_violation")
        if (
            policy.dollar_threshold is not None
            and billed is not None
            and billed >= policy.dollar_threshold
        ):
            reasons.append("dollar_threshold")
        if (
            policy.slowest_n > 0
            and time_s is not None
            and self._lands_in_slow_ring(time_s)
        ):
            reasons.append(f"slowest_{policy.slowest_n}")
        return reasons

    def capture(
        self,
        query_id: str,
        reasons: list[str],
        profile: "QueryProfile | None",
        *,
        trace_id: str | None = None,
        span_id: int | None = None,
        fingerprint: str | None = None,
        level: str | None = None,
        **attrs: object,
    ) -> dict | None:
        """Attach full evidence for one query as a ``capture`` record."""
        if len(self._captures) >= self.policy.max_captures:
            self._dropped_captures += 1
            self.event(
                "capture_dropped",
                query_id,
                trace_id=trace_id,
                span_id=span_id,
                fingerprint=fingerprint,
                level=level,
                reasons=reasons,
            )
            return None
        record = self.event(
            "capture",
            query_id,
            trace_id=trace_id,
            span_id=span_id,
            fingerprint=fingerprint,
            level=level,
            reasons=reasons,
            **attrs,
        )
        if profile is not None:
            record["profile"] = profile_to_dict(profile.root)
            record["flamegraph_svg"] = profile.flamegraph_time_svg()
            record["billed_nanodollars"] = profile.billed_nanodollars
        self._captures.append(record)
        return record

    # -- accessors ----------------------------------------------------------

    def records(self) -> list[dict]:
        return list(self._records)

    def captures(self) -> list[dict]:
        return list(self._captures)

    @property
    def dropped_captures(self) -> int:
        return self._dropped_captures

    # -- exports ------------------------------------------------------------

    def export_jsonl(self) -> str:
        """One sorted-key JSON object per line, in append order (which is
        virtual-clock order) — byte-stable across same-seed runs."""
        if not self._records:
            return ""
        return (
            "\n".join(
                json.dumps(record, sort_keys=True)
                for record in self._records
            )
            + "\n"
        )


class NoopQueryJournal(QueryJournal):
    """Inert twin: no records, no captures, empty exports."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def event(self, event, query_id, **kwargs):  # type: ignore[override]
        return {}

    def capture_reasons(self, **kwargs):  # type: ignore[override]
        return []

    def capture(self, query_id, reasons, profile, **kwargs):  # type: ignore[override]
        return None
