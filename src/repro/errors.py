"""Exception hierarchy for the PixelsDB reproduction.

Every error raised by the library derives from :class:`PixelsError`, so
callers can catch one base class at API boundaries.  Sub-hierarchies mirror
the subsystems: storage, SQL front end, planning/execution, the serverless
runtime (Turbo), the query server, and the NL2SQL service.
"""

from __future__ import annotations


class PixelsError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Storage
# --------------------------------------------------------------------------


class StorageError(PixelsError):
    """Base class for object-store and columnar-format errors."""


class NoSuchObjectError(StorageError):
    """A GET/HEAD referenced a key that does not exist in the bucket."""


class NoSuchBucketError(StorageError):
    """An operation referenced a bucket that was never created."""


class CorruptFileError(StorageError):
    """A columnar file failed validation (bad magic, checksum, or layout)."""


class CatalogError(StorageError):
    """Base class for metadata-catalog errors."""


class NoSuchSchemaError(CatalogError):
    """A database schema name did not resolve in the catalog."""


class NoSuchTableError(CatalogError):
    """A table name did not resolve in the catalog."""


class NoSuchColumnError(CatalogError):
    """A column name did not resolve against a table."""


class DuplicateObjectError(CatalogError):
    """An attempt to create a schema/table/column that already exists."""


# --------------------------------------------------------------------------
# SQL front end
# --------------------------------------------------------------------------


class SqlError(PixelsError):
    """Base class for SQL lexing/parsing/binding errors."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class LexError(SqlError):
    """The SQL text contained a character sequence that is not a token."""


class ParseError(SqlError):
    """The token stream did not match the SQL grammar."""


class BindError(SqlError):
    """A parsed query referenced unknown tables/columns or mis-typed
    expressions."""


# --------------------------------------------------------------------------
# Planning / execution
# --------------------------------------------------------------------------


class PlanError(PixelsError):
    """The planner could not produce a physical plan for a bound query."""


class ExecutionError(PixelsError):
    """A physical operator failed while producing results."""


# --------------------------------------------------------------------------
# Turbo runtime
# --------------------------------------------------------------------------


class TurboError(PixelsError):
    """Base class for serverless-runtime errors."""


class WorkerError(TurboError):
    """A VM or CF worker failed while executing a plan fragment."""


class ScalingError(TurboError):
    """The autoscaler was asked to do something impossible (e.g. scale
    below the minimum cluster size)."""


class NoSuchQueryError(TurboError):
    """A status/result lookup referenced an unknown query id."""


# --------------------------------------------------------------------------
# Query server / service levels
# --------------------------------------------------------------------------


class QueryServerError(PixelsError):
    """Base class for query-server errors."""


class InvalidServiceLevelError(QueryServerError):
    """The submission named a service level the server does not offer."""


class QueryRejectedError(QueryServerError):
    """The server refused the submission (e.g. queue capacity exceeded)."""


class GracePeriodExceededError(QueryServerError):
    """A relaxed query could not be admitted within its grace period."""


# --------------------------------------------------------------------------
# NL2SQL
# --------------------------------------------------------------------------


class Nl2SqlError(PixelsError):
    """Base class for text-to-SQL service errors."""


class TranslationError(Nl2SqlError):
    """The translator could not produce an SQL query for the question."""


class ProtocolError(Nl2SqlError):
    """A malformed JSON message was sent to the text-to-SQL service."""


# --------------------------------------------------------------------------
# Rover
# --------------------------------------------------------------------------


class RoverError(PixelsError):
    """Base class for Pixels-Rover backend errors."""


class AuthenticationError(RoverError):
    """Login failed or a session token is invalid/expired."""


class AuthorizationError(RoverError):
    """The session is not authorized to access the requested database."""


class NoSuchSessionError(RoverError):
    """An operation referenced a session id that does not exist."""
