"""Authentication and per-user database authorization."""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

from repro.errors import AuthenticationError, AuthorizationError


def _hash_password(password: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


@dataclass
class User:
    """One registered user and the database schemas they may analyze."""

    username: str
    password_hash: str
    salt: str
    authorized_databases: set[str] = field(default_factory=set)


class UserStore:
    """User registry with salted-hash password verification."""

    def __init__(self) -> None:
        self._users: dict[str, User] = {}

    def register(
        self, username: str, password: str, authorized_databases: set[str]
    ) -> User:
        if username in self._users:
            raise AuthenticationError(f"user {username!r} already exists")
        if not password:
            raise AuthenticationError("password must not be empty")
        salt = secrets.token_hex(8)
        user = User(
            username=username,
            password_hash=_hash_password(password, salt),
            salt=salt,
            authorized_databases=set(authorized_databases),
        )
        self._users[username] = user
        return user

    def authenticate(self, username: str, password: str) -> User:
        user = self._users.get(username)
        if user is None or user.password_hash != _hash_password(
            password, user.salt
        ):
            raise AuthenticationError("invalid username or password")
        return user

    def grant(self, username: str, database: str) -> None:
        self._user(username).authorized_databases.add(database)

    def revoke(self, username: str, database: str) -> None:
        self._user(username).authorized_databases.discard(database)

    def check_authorized(self, username: str, database: str) -> None:
        if database not in self._user(username).authorized_databases:
            raise AuthorizationError(
                f"user {username!r} is not authorized for database {database!r}"
            )

    def _user(self, username: str) -> User:
        user = self._users.get(username)
        if user is None:
            raise AuthenticationError(f"no such user {username!r}")
        return user
