"""Authentication and per-user database authorization."""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

from repro.errors import AuthenticationError, AuthorizationError


def _hash_password(password: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


@dataclass
class User:
    """One registered user and the database schemas they may analyze.

    ``tenant`` is the billing account the user's queries are metered
    under (spend accounting, soft budgets); it defaults to the username
    so every user is its own tenant unless grouped explicitly.
    """

    username: str
    password_hash: str
    salt: str
    authorized_databases: set[str] = field(default_factory=set)
    tenant: str = ""

    def __post_init__(self) -> None:
        if not self.tenant:
            self.tenant = self.username


class UserStore:
    """User registry with salted-hash password verification."""

    def __init__(self) -> None:
        self._users: dict[str, User] = {}

    def register(
        self,
        username: str,
        password: str,
        authorized_databases: set[str],
        tenant: str | None = None,
    ) -> User:
        if username in self._users:
            raise AuthenticationError(f"user {username!r} already exists")
        if not password:
            raise AuthenticationError("password must not be empty")
        salt = secrets.token_hex(8)
        user = User(
            username=username,
            password_hash=_hash_password(password, salt),
            salt=salt,
            authorized_databases=set(authorized_databases),
            tenant=tenant or username,
        )
        self._users[username] = user
        return user

    def authenticate(self, username: str, password: str) -> User:
        user = self._users.get(username)
        if user is None or user.password_hash != _hash_password(
            password, user.salt
        ):
            raise AuthenticationError("invalid username or password")
        return user

    def grant(self, username: str, database: str) -> None:
        self._user(username).authorized_databases.add(database)

    def revoke(self, username: str, database: str) -> None:
        self._user(username).authorized_databases.discard(database)

    def tenant_of(self, username: str) -> str:
        """The billing tenant a user's queries are metered under."""
        return self._user(username).tenant

    def check_authorized(self, username: str, database: str) -> None:
        if database not in self._user(username).authorized_databases:
            raise AuthorizationError(
                f"user {username!r} is not authorized for database {database!r}"
            )

    def _user(self, username: str) -> User:
        user = self._users.get(username)
        if user is None:
            raise AuthenticationError(f"no such user {username!r}")
        return user
