"""Pixels-Rover: the user-interface backend (paper §2(1) and §4).

The demo UI is a browser app; its *backend* is what carries the system
behaviour, and that is what this package implements:

* :mod:`~repro.rover.auth` — login/authentication and per-user database
  authorization (§4: "after logging in through authentication ... schemas
  of the authorized databases").
* :mod:`~repro.rover.models` — translator blocks (question → editable SQL
  code block) and status-and-result blocks with the per-level colours and
  the four statuses of §4.3.
* :mod:`~repro.rover.server` — the backend façade wiring the schema
  browser, the text-to-SQL service (via the JSON protocol of §2(3)), the
  submission form (service level + result-size limit, Figure 3), and the
  query-result area ordered by submission time.
"""

from repro.rover.auth import UserStore
from repro.rover.models import ResultBlock, TranslatorBlock
from repro.rover.server import RoverServer

__all__ = ["ResultBlock", "RoverServer", "TranslatorBlock", "UserStore"]
