"""The Pixels-Rover backend façade.

Every §4 interaction is a method here:

* §4 login → :meth:`RoverServer.login` (session tokens).
* §4.1 schema browser → :meth:`list_databases` / :meth:`schema_tree`.
* §4.2 form a query → :meth:`select_database`, :meth:`ask` (text-to-SQL
  via the JSON protocol), the block edit methods, :meth:`submission_form`
  and :meth:`submit_query` (service level + result-size limit).
* §4.3 check status/result → :meth:`result_blocks` (ascending submission
  time, level colours), :meth:`expand_result`, and the block↔result
  linkage for highlighting.
"""

from __future__ import annotations

import json
import secrets
from dataclasses import dataclass, field

from repro.errors import (
    AuthenticationError,
    NoSuchQueryError,
    RoverError,
    TranslationError,
)
from repro.core.query_server import QueryServer
from repro.core.service_levels import ServiceLevel
from repro.nl2sql.protocol import CodesService
from repro.rover.auth import UserStore
from repro.rover.models import ResultBlock, TranslatorBlock
from repro.storage.catalog import Catalog


@dataclass
class Session:
    """One logged-in browser session."""

    token: str
    username: str
    selected_database: str | None = None
    translator_blocks: dict[str, TranslatorBlock] = field(default_factory=dict)
    block_order: list[str] = field(default_factory=list)
    result_blocks: dict[str, ResultBlock] = field(default_factory=dict)
    result_order: list[str] = field(default_factory=list)


class RoverServer:
    """Backend for the Pixels-Rover UI."""

    def __init__(
        self,
        users: UserStore,
        catalog: Catalog,
        codes_service: CodesService,
        query_server: QueryServer,
    ) -> None:
        self._users = users
        self._catalog = catalog
        self._codes = codes_service
        self._query_server = query_server
        self._sessions: dict[str, Session] = {}
        self._block_counter = 0

    # -- authentication (§4) --------------------------------------------------------

    def login(self, username: str, password: str) -> str:
        """Authenticate and open a session; returns the session token."""
        self._users.authenticate(username, password)
        token = secrets.token_hex(16)
        self._sessions[token] = Session(token=token, username=username)
        return token

    def logout(self, token: str) -> None:
        self._sessions.pop(token, None)

    def _session(self, token: str) -> Session:
        session = self._sessions.get(token)
        if session is None:
            raise AuthenticationError("invalid or expired session token")
        return session

    # -- schema browser (§4.1) ---------------------------------------------------------

    def list_databases(self, token: str) -> list[str]:
        """The authorized databases shown in the left sidebar."""
        session = self._session(token)
        user_databases = {
            name
            for name in self._catalog.schema_names
        }
        authorized = []
        for name in sorted(user_databases):
            try:
                self._users.check_authorized(session.username, name)
            except RoverError:
                continue
            authorized.append(name)
        return authorized

    def schema_tree(self, token: str, database: str) -> dict:
        """Hierarchical database → table → column view with data types
        (hover shows the type in the UI, so types ride along)."""
        session = self._session(token)
        self._users.check_authorized(session.username, database)
        schema = self._catalog.schema(database)
        return {
            "database": schema.name,
            "tables": [
                {
                    "name": table.name,
                    "comment": table.comment,
                    "columns": [
                        {
                            "name": column.name,
                            "type": column.dtype.value,
                            "comment": column.comment,
                        }
                        for column in table.columns
                    ],
                }
                for table in schema.tables.values()
            ],
        }

    def select_database(self, token: str, database: str) -> None:
        """The drop-down at the lower left of the Translator (§4.2)."""
        session = self._session(token)
        self._users.check_authorized(session.username, database)
        self._catalog.schema(database)  # raises if unknown
        session.selected_database = database

    # -- translator (§4.2) ----------------------------------------------------------------

    def ask(self, token: str, question: str) -> TranslatorBlock:
        """Send a natural-language question to the text-to-SQL service.

        Compiles the §2(3) JSON message (question + schema elements of the
        selected database), calls the service, and renders the translated
        query as a code block below the question.
        """
        session = self._session(token)
        if session.selected_database is None:
            raise RoverError("select a database before asking questions")
        payload = {
            "question": question,
            "schema": self._catalog.describe_schema(session.selected_database),
        }
        response = self._codes.handle(payload)
        if response.get("error"):
            raise TranslationError(response["error"])
        self._block_counter += 1
        block = TranslatorBlock(
            block_id=f"block-{self._block_counter}",
            question=question,
            sql=response["sql"],
            translated_sql=response["sql"],
            confidence=response["confidence"],
        )
        session.translator_blocks[block.block_id] = block
        session.block_order.append(block.block_id)
        return block

    def block(self, token: str, block_id: str) -> TranslatorBlock:
        session = self._session(token)
        try:
            return session.translator_blocks[block_id]
        except KeyError:
            raise NoSuchQueryError(f"no translator block {block_id!r}") from None

    def begin_edit(self, token: str, block_id: str) -> None:
        self.block(token, block_id).begin_edit()

    def update_draft(self, token: str, block_id: str, sql: str) -> None:
        self.block(token, block_id).update_draft(sql)

    def confirm_edit(self, token: str, block_id: str) -> None:
        self.block(token, block_id).confirm_edit()

    def cancel_edit(self, token: str, block_id: str) -> None:
        self.block(token, block_id).cancel_edit()

    # -- submission form (§4.2, Figure 3) ------------------------------------------------

    def submission_form(self, token: str, block_id: str) -> dict:
        """The translucent submission form: the query, the three service
        levels with their prices, and the result-size limit field."""
        block = self.block(token, block_id)
        return {
            "block_id": block.block_id,
            "sql": block.sql,
            "service_levels": [
                {
                    "level": level.value,
                    "price_per_tb": self._query_server.price_quote(level),
                    "cf_acceleration": level.cf_enabled,
                }
                for level in ServiceLevel
            ],
            "default_result_limit": 1000,
        }

    def submit_query(
        self,
        token: str,
        block_id: str,
        level: ServiceLevel | str,
        result_limit: int | None = 1000,
    ) -> ResultBlock:
        """Submit the block's query at the chosen service level."""
        session = self._session(token)
        block = self.block(token, block_id)
        if isinstance(level, str):
            level = ServiceLevel.from_string(level)
        server_query = self._query_server.submit(
            block.sql,
            level,
            result_limit=result_limit,
            tenant=self._users.tenant_of(session.username),
        )
        result = ResultBlock(
            result_id=f"result-{server_query.query_id}",
            origin_block_id=block.block_id,
            submitted_at=server_query.submitted_at,
            server_query=server_query,
        )
        session.result_blocks[result.result_id] = result
        session.result_order.append(result.result_id)
        block.result_ids.append(result.result_id)
        return result

    # -- query result area (§4.3) -----------------------------------------------------------

    def result_blocks(self, token: str) -> list[ResultBlock]:
        """All blocks, ascending by submission time (§4.3)."""
        session = self._session(token)
        return sorted(
            session.result_blocks.values(), key=lambda block: block.submitted_at
        )

    def expand_result(self, token: str, result_id: str) -> dict:
        session = self._session(token)
        try:
            return session.result_blocks[result_id].expand()
        except KeyError:
            raise NoSuchQueryError(f"no result block {result_id!r}") from None

    def cancel_query(self, token: str, result_id: str) -> bool:
        """Cancel the query behind a result block (any pre-terminal
        status); the block moves to *failed* with a cancellation message."""
        session = self._session(token)
        try:
            result = session.result_blocks[result_id]
        except KeyError:
            raise NoSuchQueryError(f"no result block {result_id!r}") from None
        return self._query_server.cancel(result.server_query.query_id)

    # -- observability ------------------------------------------------------------------

    def metrics(self, token: str) -> str:
        """Prometheus text exposition of the server's metrics registry
        (empty unless the system was built with observability on)."""
        self._session(token)  # any authenticated session may scrape
        return self._query_server.obs.metrics.render()

    def trace(self, token: str, query_id: str) -> str:
        """The JSON span timeline of one submitted query."""
        self._session(token)
        tracer = self._query_server.obs.tracer
        if query_id not in tracer.trace_ids():
            raise NoSuchQueryError(f"no trace for query {query_id!r}")
        return tracer.export_json(query_id)

    def statements(self, token: str, k: int = 10, by: str = "dollars") -> str:
        """The top-K statement-statistics table (``by`` is one of
        ``time``/``dollars``/``calls``; empty without observability)."""
        self._session(token)  # any authenticated session may inspect
        return self._query_server.obs.statements.render_top(k, by)

    def statements_json(self, token: str) -> str:
        """Every statement-statistics entry as byte-stable JSON."""
        self._session(token)
        return self._query_server.obs.statements.export_json()

    def journal(self, token: str) -> str:
        """The trace-correlated query journal as deterministic JSONL
        (includes tail-based slow-query captures)."""
        self._session(token)
        return self._query_server.obs.journal.export_jsonl()

    def ledger(self, token: str) -> str:
        """The full metering ledger as byte-stable JSONL — every charge
        and void the server emitted, in sequence order (empty without
        observability)."""
        self._session(token)  # any authenticated session may audit
        return self._query_server.obs.ledger.export_jsonl()

    def spend(self, token: str) -> str:
        """The per-tenant spend report (net nanodollars, per-level
        split, soft-budget status) as byte-stable JSON."""
        self._session(token)
        return self._query_server.obs.spend.export_json()

    def activity(self, token: str) -> str:
        """The live query-activity view — every submission's lifecycle
        state, per-operator progress, and projected bill — as byte-stable
        JSON (the ``pg_stat_activity`` of this system; empty without
        observability)."""
        self._session(token)  # any authenticated session may inspect
        return self._query_server.obs.activity.export_json()

    def projections(self, token: str) -> str:
        """The estimator's accuracy record — estimated vs. actual bill
        per completed query plus the aggregate MAPE — as byte-stable
        JSON."""
        self._session(token)
        return self._query_server.obs.activity.export_projection_json()

    def scheduler(self, token: str) -> str:
        """The scheduler state — per-tenant/per-level queue depths, WFQ
        shares, Jain fairness, and admission verdict counts — as
        byte-stable JSON, consistent with the ledger/spend endpoints."""
        self._session(token)  # any authenticated session may inspect
        snapshot = self._query_server.scheduler_snapshot()
        return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"

    def origin_of(self, token: str, result_id: str) -> TranslatorBlock:
        """Result block → its question block (highlight linkage)."""
        session = self._session(token)
        try:
            result = session.result_blocks[result_id]
        except KeyError:
            raise NoSuchQueryError(f"no result block {result_id!r}") from None
        return session.translator_blocks[result.origin_block_id]

    def results_of(self, token: str, block_id: str) -> list[ResultBlock]:
        """Question block → its result blocks (reverse linkage)."""
        session = self._session(token)
        block = self.block(token, block_id)
        return [session.result_blocks[rid] for rid in block.result_ids]
