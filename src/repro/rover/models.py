"""UI state objects: translator blocks and status-and-result blocks (§4)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query_server import ServerQuery
from repro.core.service_levels import QueryStatus, ServiceLevel


@dataclass
class TranslatorBlock:
    """One question and its SQL code block in the Translator area.

    Mirrors §4.2's edit workflow: the block starts read-only with the
    translated query; ``begin_edit`` makes it writable, ``confirm_edit``
    accepts the modification, ``cancel_edit`` resets to the last confirmed
    text.  ``result_ids`` link to the result blocks this query produced
    (double-click highlighting in the UI).
    """

    block_id: str
    question: str
    sql: str
    translated_sql: str  # what the service originally produced
    confidence: float
    editing: bool = False
    _draft: str | None = None
    result_ids: list[str] = field(default_factory=list)

    def begin_edit(self) -> None:
        self.editing = True
        self._draft = self.sql

    def update_draft(self, sql: str) -> None:
        if not self.editing:
            raise ValueError("block is not in edit mode")
        self._draft = sql

    def confirm_edit(self) -> None:
        if not self.editing:
            raise ValueError("block is not in edit mode")
        assert self._draft is not None
        self.sql = self._draft
        self.editing = False
        self._draft = None

    def cancel_edit(self) -> None:
        if not self.editing:
            raise ValueError("block is not in edit mode")
        self.editing = False
        self._draft = None


@dataclass
class ResultBlock:
    """One status-and-result block in the Query Result area (§4.3)."""

    result_id: str
    origin_block_id: str
    submitted_at: float
    server_query: ServerQuery

    @property
    def level(self) -> ServiceLevel:
        return self.server_query.level

    @property
    def status(self) -> QueryStatus:
        return self.server_query.status

    @property
    def color(self) -> str:
        """Background colour encodes the service level (§4.3)."""
        return self.level.display_color

    def expand(self) -> dict:
        """The expanded block: result + execution statistics, or the error
        message for failed queries (§4.3)."""
        query = self.server_query
        if self.status is QueryStatus.FAILED:
            return {"status": self.status.value, "error": query.error}
        payload: dict = {"status": self.status.value}
        if self.status is QueryStatus.FINISHED:
            payload.update(
                {
                    "columns": query.result_columns(),
                    "rows": query.result_rows(),
                    "pending_time_s": query.pending_time_s,
                    "execution_time_s": query.execution_time_s,
                    "monetary_cost": query.price,
                }
            )
        return payload
