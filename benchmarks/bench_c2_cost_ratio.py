"""Experiment C2 — the CF/VM cost asymmetry (paper §2, §3.2).

Paper claims:
* CF resource unit prices are **9–24×** those of VMs (§2);
* the monetary cost of relaxed queries is **1–2 orders of magnitude**
  lower than immediate queries executed in CFs (§3.2(2)).

The bench (a) checks the configured unit-price ratio and (b) forces a
spike where immediate queries run on CF while relaxed copies of the same
queries wait for VM capacity, then compares the attributed provider cost
per query between the two populations.
"""

import pytest

from common import (
    HEAVY_SQL,
    bench_record,
    export_ledger_audit,
    format_row,
    report,
    tpch_environment,
    workload_metrics,
)
from repro.baselines import run_workload
from repro.baselines.runner import Submission
from repro.core import ServiceLevel
from repro.turbo import TurboConfig
from repro.turbo.coordinator import ExecutionVenue


def run_experiment():
    store, catalog = tpch_environment()
    config = TurboConfig.experiment()
    submissions = []
    # A tight spike: 12 immediate + 12 relaxed copies of the same query.
    for index in range(12):
        submissions.append(
            Submission(100.0 + index * 0.1, HEAVY_SQL, ServiceLevel.IMMEDIATE)
        )
        submissions.append(
            Submission(100.0 + index * 0.1, HEAVY_SQL, ServiceLevel.RELAXED)
        )
    return config, run_workload(
        submissions, store, catalog, "tpch", config, observe=True
    )


def test_c2_cost_ratio(benchmark):
    config, result = benchmark.pedantic(
        lambda: bench_record(
            "c2", run_experiment, lambda pair: workload_metrics(pair[1])
        ),
        rounds=1, iterations=1,
    )

    unit_ratio = (
        config.cf.price_per_worker_s(config.vm) / config.vm.price_per_worker_s
    )
    immediate = result.finished(ServiceLevel.IMMEDIATE)
    relaxed = result.finished(ServiceLevel.RELAXED)
    on_cf = [q for q in immediate if q.execution.venue is ExecutionVenue.CF]
    cf_cost = sum(q.execution.provider_cost for q in on_cf) / max(len(on_cf), 1)
    vm_cost = sum(q.execution.provider_cost for q in relaxed) / len(relaxed)
    per_query_ratio = cf_cost / vm_cost

    lines = [
        format_row("quantity", "paper", "measured"),
        format_row("CF/VM unit price ratio", "9 - 24x", f"{unit_ratio:.1f}x"),
        format_row(
            "per-query cost, CF vs VM",
            "1-2 orders of magnitude",
            f"{per_query_ratio:.1f}x",
        ),
        "",
        f"immediate-on-CF queries: {len(on_cf)}/{len(immediate)} "
        f"(avg ${cf_cost:.6f}/query)",
        f"relaxed-on-VM queries : {len(relaxed)} (avg ${vm_cost:.6f}/query)",
    ]
    report("C2  CF vs VM cost asymmetry, paper §2 and §3.2(2)", lines)
    export_ledger_audit("c2", result)

    assert 9 <= unit_ratio <= 24
    assert on_cf, "spike failed to push immediate queries onto CF"
    # "1-2 orders of magnitude": at least 10x, not absurdly more than 100x.
    assert 10 <= per_query_ratio <= 1000
