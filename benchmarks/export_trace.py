"""Export a demo session's span timelines as deterministic JSON.

Runs a small three-level session against a TPC-H-style dataset with
observability on and writes ``Tracer.export_all_json()`` to the given
path (default ``results/demo_traces.json``).  Because span timestamps
come from the virtual clock and span ids from a counter, the output is
byte-identical across same-seed runs — CI uploads it as an artifact so
trace-shape changes show up as a reviewable diff.

Usage: PYTHONPATH=../src python export_trace.py [output.json]
"""

from __future__ import annotations

import pathlib
import sys

from repro import PixelsDB, ServiceLevel


def export(path: pathlib.Path) -> None:
    db = PixelsDB(observe=True, seed=5)
    db.load_tpch("tpch", scale=0.01)
    db.submit("tpch", "SELECT COUNT(*) FROM nation", ServiceLevel.IMMEDIATE)
    db.submit(
        "tpch",
        "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
        ServiceLevel.RELAXED,
    )
    db.submit(
        "tpch", "SELECT COUNT(*) FROM region", ServiceLevel.BEST_EFFORT
    )
    db.run_to_completion()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(db.export_traces() + "\n")
    trace_count = len(db.obs.tracer.trace_ids())
    print(f"wrote {trace_count} traces to {path}")


if __name__ == "__main__":
    target = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "results/demo_traces.json"
    )
    export(target)
