"""Export a demo session's span timelines and profiles, deterministically.

Runs a small three-level session against a TPC-H-style dataset with
observability on and writes ``Tracer.export_all_json()`` to the given
path (default ``results/demo_traces.json``).  For the demo GROUP BY
query it also writes the profiler's exports next to the traces: folded
stacks (``demo_profile_time.folded``, ``demo_profile_dollars.folded``)
plus the two flame-graph SVGs.  Because span timestamps come from the
virtual clock and span ids from a counter, every output is
byte-identical across same-seed runs — CI uploads them as artifacts so
trace- and attribution-shape changes show up as reviewable diffs.

Usage: PYTHONPATH=../src python export_trace.py [output.json]
"""

from __future__ import annotations

import pathlib
import sys

from repro import PixelsDB, ServiceLevel


def export(path: pathlib.Path) -> None:
    db = PixelsDB(observe=True, seed=5)
    db.load_tpch("tpch", scale=0.01)
    db.submit("tpch", "SELECT COUNT(*) FROM nation", ServiceLevel.IMMEDIATE)
    demo = db.submit(
        "tpch",
        "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment",
        ServiceLevel.RELAXED,
    )
    db.submit(
        "tpch", "SELECT COUNT(*) FROM region", ServiceLevel.BEST_EFFORT
    )
    db.run_to_completion()
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(db.export_traces() + "\n")
    trace_count = len(db.obs.tracer.trace_ids())
    print(f"wrote {trace_count} traces to {path}")

    profile = db.profile("tpch", demo.query_id)
    exports = {
        "demo_profile_time.folded": profile.folded_time(),
        "demo_profile_dollars.folded": profile.folded_dollars(),
        "demo_profile_time.svg": profile.flamegraph_time_svg(),
        "demo_profile_dollars.svg": profile.flamegraph_dollars_svg(),
    }
    for filename, payload in exports.items():
        (path.parent / filename).write_text(payload)
    print(
        f"wrote profile exports for {demo.query_id} "
        f"(billed {profile.billed_nanodollars} nano$) to {path.parent}"
    )


if __name__ == "__main__":
    target = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "results/demo_traces.json"
    )
    export(target)
