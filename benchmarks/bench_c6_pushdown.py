"""Experiment C6 — CF plan push-down and transparency (paper §3.1).

Paper claims: when the VM cluster is overloaded, the expensive operators
(table scans, joins, aggregations) of a new query are pushed down into a
sub-plan executed by ephemeral CF workers whose result returns "as a
materialized view to the top-level plan", the query "is executed without
further overloading the VM cluster, and this is transparent to users".

The bench (a) splits every TPC-H query template and verifies the split
execution produces byte-identical results, (b) verifies the expensive
operators all land in the CF sub-plan, and (c) verifies CF-accelerated
queries do not increase VM-cluster concurrency.
"""

import pytest

from common import bench_record, format_row, report, tpch_environment
from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.plan import Aggregate, HashJoin, Scan, walk_plan
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.turbo import TurboConfig, Coordinator
from repro.turbo.plan_split import split_plan
from repro.sim import Simulator
from repro.workloads import TPCH_QUERIES


def run_experiment():
    store, catalog = tpch_environment()
    planner = Planner(catalog, "tpch")
    optimizer = Optimizer()
    executor = QueryExecutor(ObjectStoreSource(store))
    rows = []
    for name, sql in sorted(TPCH_QUERIES.items()):
        plan = optimizer.optimize(planner.plan_sql(sql))
        direct = executor.execute(plan)
        plan2 = optimizer.optimize(planner.plan_sql(sql))
        split = split_plan(plan2)
        sub_result = executor.execute(split.sub)
        split.attach(sub_result.data)
        via_cf = executor.execute(split.top)
        pushed = {
            type(node).__name__
            for node in walk_plan(split.sub)
            if isinstance(node, (Scan, HashJoin, Aggregate))
        }
        leaked = {
            type(node).__name__
            for node in walk_plan(split.top)
            if isinstance(node, (Scan, HashJoin, Aggregate))
        }
        rows.append(
            {
                "name": name,
                "match": via_cf.rows() == direct.rows(),
                "pushed": pushed,
                "leaked": leaked,
            }
        )
    return rows


def run_concurrency_probe():
    """CF queries must not load the VM cluster (§3.1)."""
    store, catalog = tpch_environment()
    sim = Simulator()
    config = TurboConfig.experiment()
    coordinator = Coordinator(sim, config, catalog, store, "tpch")
    heavy = TPCH_QUERIES["q1_pricing_summary"]
    # Fill both VM slots.
    for _ in range(2):
        coordinator.submit(heavy, cf_enabled=False)
    before = coordinator.concurrency
    for _ in range(10):
        coordinator.submit(heavy, cf_enabled=True)
    after = coordinator.concurrency
    sim.run_until(3600)
    return before, after, len(coordinator.cf_service.invocations)


def split_metrics(rows):
    return {
        "queries_split": len(rows),
        "results_identical": sum(1 for row in rows if row["match"]),
        "expensive_ops_pushed": sum(len(row["pushed"]) for row in rows),
        "expensive_ops_leaked": sum(len(row["leaked"]) for row in rows),
    }


def test_c6_pushdown(benchmark):
    rows = benchmark.pedantic(
        lambda: bench_record("c6", run_experiment, split_metrics),
        rounds=1, iterations=1,
    )
    before, after, invocations = run_concurrency_probe()

    lines = [format_row("query", "results identical", "ops pushed to CF sub-plan")]
    for row in rows:
        lines.append(
            format_row(
                row["name"],
                "yes" if row["match"] else "NO",
                ",".join(sorted(row["pushed"])),
                widths=[24, 18, 30],
            )
        )
    lines += [
        "",
        f"VM concurrency before/after 10 CF-accelerated queries: "
        f"{before} -> {after} (paper: 'without further overloading the VM cluster')",
        f"CF invocations: {invocations}",
    ]
    report("C6  CF plan push-down: transparency and isolation, paper §3.1", lines)

    assert all(row["match"] for row in rows)
    assert all(row["pushed"] for row in rows)
    assert all(not row["leaked"] for row in rows)
    assert after == before  # CF path added nothing to the VM cluster
    assert invocations == 10
