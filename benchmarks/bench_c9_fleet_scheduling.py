"""Experiment C9 — fleet-scale admission-controlled fair scheduling.

Drives 10⁴+ simulated client sessions (a diurnal best-effort fleet, a
relaxed spike, and periodic immediate probes) through the sharded
session layer against one admission-controlled, weighted-fair query
server.  The cluster saturates by design — capacity is constrained and
the horizon bounded, so only a small fraction of the backlog executes —
which is the regime where the scheduler's promises matter:

* **Immediate never starves**: every immediate probe injected while the
  relaxed/best-effort backlog saturates the cluster starts at its
  submission instant (pending time 0 → SLO compliance 1.0).
* **Weighted fairness**: with equal shares, the WFQ core's per-tenant
  hold-queue dispatches stay near-uniform (Jain index ≥ 0.95).
* **Admission under pressure**: relaxed submissions past the pressure
  threshold are downgraded to best-effort; tenants past their live-query
  quota are rejected outright.  Rejected queries leave no record and
  bill $0; downgraded queries bill at the best-effort rate — the ledger
  replay (``reconcile_gate.py``) proves both.

Every recorded metric is an exact simulation output: identical across
rounds, machines, and ``REPRO_WORKERS`` settings, so the perf gate
demands exact matches against ``BENCH_c9.json``.
"""

import json
import os

import numpy as np

from common import (
    MEDIUM_SQL,
    LIGHT_SQL,
    bench_record,
    export_ledger_audit,
    format_row,
    report,
    tpch_environment,
)
from repro.baselines.runner import WorkloadResult
from repro.core import QueryStatus, ServiceLevel
from repro.core.query_server import QueryServer
from repro.core.scheduler import AdmissionPolicy, SessionFleet, SessionSpec
from repro.obs import Instrumentation
from repro.sim import Simulator
from repro.turbo import TurboConfig
from repro.turbo.coordinator import Coordinator
from repro.workloads.arrivals import diurnal_arrivals, spike_arrivals

TENANTS = [f"tenant-{i}" for i in range(8)]
HORIZON_S = 3600.0
PROBE_TENANT = "ops-probe"


def build_fleet(sim: Simulator, server: QueryServer) -> SessionFleet:
    """10⁴+ sessions: diurnal best-effort bulk, relaxed spike, probes."""
    fleet = SessionFleet(sim, server, num_shards=16)
    rng = np.random.default_rng(9)
    bulk = diurnal_arrivals(
        rng,
        duration_s=HORIZON_S,
        peak_rate_per_s=5.0,
        period_s=HORIZON_S,
        trough_fraction=0.1,
    )
    for index, offset in enumerate(bulk):
        fleet.add(
            SessionSpec(
                session_id=f"bulk-{index}",
                tenant=TENANTS[index % len(TENANTS)],
                level=ServiceLevel.BEST_EFFORT,
                arrivals=(offset,),
                sql=MEDIUM_SQL,
            )
        )
    spike = spike_arrivals(
        rng,
        duration_s=HORIZON_S,
        base_rate_per_s=0.0,
        spike_at_s=1800.0,
        spike_queries=1500,
        spike_spread_s=30.0,
    )
    for index, offset in enumerate(spike):
        fleet.add(
            SessionSpec(
                session_id=f"spike-{index}",
                tenant=TENANTS[index % len(TENANTS)],
                level=ServiceLevel.RELAXED,
                arrivals=(offset,),
                sql=MEDIUM_SQL,
            )
        )
    for index, offset in enumerate(np.arange(300.0, HORIZON_S - 60.0, 60.0)):
        fleet.add(
            SessionSpec(
                session_id=f"probe-{index}",
                tenant=PROBE_TENANT,
                level=ServiceLevel.IMMEDIATE,
                arrivals=(float(offset),),
                sql=LIGHT_SQL,
            )
        )
    return fleet


def run_experiment():
    store, catalog = tpch_environment(scale=0.02)
    # Heavy inflation so dispatched queries occupy the cluster for
    # hundreds of simulated seconds: the backlog saturates and stays
    # saturated, and only a bounded fraction of the fleet executes
    # within the horizon.
    config = TurboConfig.experiment(data_inflation=50_000.0)
    sim = Simulator(seed=424242)
    obs = Instrumentation.create(clock=lambda: sim.now)
    coordinator = Coordinator(sim, config, catalog, store, "tpch", obs=obs)
    server = QueryServer(
        sim,
        coordinator,
        config,
        admission=AdmissionPolicy(tenant_quota=1000, downgrade_queue_depth=64),
    )
    fleet = build_fleet(sim, server)
    fleet.start()
    sim.run_until(HORIZON_S)
    result = WorkloadResult(
        sim=sim, coordinator=coordinator, server=server, obs=obs
    )
    result.queries = list(server.queries)
    return result, fleet


def experiment_metrics(pair) -> dict:
    result, fleet = pair
    server = result.server
    snapshot = server.scheduler_snapshot()
    admission = snapshot["admission"]
    probes = [
        q for q in server.queries if q.level is ServiceLevel.IMMEDIATE
    ]
    on_time = [q for q in probes if q.pending_time_s == 0.0]
    fairness = snapshot["fairness"]["jain_dispatched"]
    finished = [
        q for q in server.queries if q.status is QueryStatus.FINISHED
    ]
    return {
        "num_sessions": fleet.num_sessions,
        "num_shards": fleet.num_shards,
        "admitted": admission["admitted"],
        "rejected": sum(admission["rejected"].values()),
        "downgraded": sum(admission["downgraded"].values()),
        "held_relaxed": server.queued_relaxed,
        "held_best_effort": server.queued_best_effort,
        "immediate_probes": len(probes),
        "immediate_slo_compliance": (
            round(len(on_time) / len(probes), 9) if probes else None
        ),
        "jain_fairness": (
            round(fairness, 6) if fairness is not None else None
        ),
        "finished_queries": len(finished),
        "billed_dollars": round(server.total_billed(), 12),
        "sim_seconds": round(result.sim.now, 9),
    }


def test_c9_fleet_scheduling(benchmark):
    result, fleet = benchmark.pedantic(
        lambda: bench_record(
            "c9",
            run_experiment,
            experiment_metrics,
            meta={
                "sessions": "diurnal best-effort + relaxed spike + probes",
                "horizon_s": HORIZON_S,
                "tenants": len(TENANTS) + 1,
            },
        ),
        rounds=1,
        iterations=1,
    )
    metrics = experiment_metrics((result, fleet))
    server = result.server
    snapshot = server.scheduler_snapshot()

    lines = [
        format_row("metric", "value", widths=[34, 24]),
        format_row("sessions", metrics["num_sessions"], widths=[34, 24]),
        format_row("shards", metrics["num_shards"], widths=[34, 24]),
        format_row("admitted", metrics["admitted"], widths=[34, 24]),
        format_row(
            "rejected (quota)", metrics["rejected"], widths=[34, 24]
        ),
        format_row(
            "downgraded (pressure)", metrics["downgraded"], widths=[34, 24]
        ),
        format_row(
            "held at horizon (rlx/be)",
            f"{metrics['held_relaxed']}/{metrics['held_best_effort']}",
            widths=[34, 24],
        ),
        format_row(
            "immediate probes", metrics["immediate_probes"], widths=[34, 24]
        ),
        format_row(
            "immediate SLO compliance",
            metrics["immediate_slo_compliance"],
            widths=[34, 24],
        ),
        format_row(
            "Jain fairness (WFQ dispatches)",
            metrics["jain_fairness"],
            widths=[34, 24],
        ),
        format_row(
            "finished queries", metrics["finished_queries"], widths=[34, 24]
        ),
        format_row(
            "billed", f"${metrics['billed_dollars']:.6f}", widths=[34, 24]
        ),
        "",
        "per-tenant WFQ dispatches: "
        + ", ".join(
            f"{tenant}={count}"
            for tenant, count in snapshot["dispatched_by_tenant"].items()
        ),
    ]

    # Billing audit: every admitted query's charges reconcile; rejected
    # queries left no record and billed $0 (reconcile_gate replays this
    # ledger in CI).
    paths = export_ledger_audit("c9", result)
    scheduler_path = os.path.join(
        os.path.dirname(__file__), "results", "c9_scheduler.json"
    )
    with open(scheduler_path, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "scheduler": snapshot,
                "fleet": fleet.snapshot(),
                "metrics": metrics,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")
    lines += ["", f"artifacts: {sorted(paths)} + c9_scheduler.json"]
    report("C9  Fleet-scale admission-controlled fair scheduling", lines)

    # 10⁴+ sessions over a saturating backlog.
    assert metrics["num_sessions"] >= 10_000
    assert metrics["held_best_effort"] >= 1_000  # saturated at horizon
    # Immediate queries meet the 0s pending-time deadline — all of them.
    assert metrics["immediate_probes"] >= 50
    assert metrics["immediate_slo_compliance"] == 1.0
    # Equal shares → near-uniform hold-queue dispatches across tenants.
    assert metrics["jain_fairness"] >= 0.95
    # Admission exercised both pressure paths.
    assert metrics["rejected"] > 0
    assert metrics["downgraded"] > 0
    assert snapshot["admission"]["rejected"] == {
        "tenant_quota": metrics["rejected"]
    }
    assert snapshot["admission"]["downgraded"] == {
        "queue_pressure": metrics["downgraded"]
    }
    # Rejected queries leave no record behind (and so bill $0);
    # admitted + downgraded queries all do.
    assert len(server.queries) == metrics["admitted"] + metrics["downgraded"]
    # Downgraded queries run at the best-effort price.
    downgraded = [q for q in server.queries if q.downgraded]
    assert downgraded
    assert all(q.level is ServiceLevel.BEST_EFFORT for q in downgraded)
    assert all(
        q.requested_level is ServiceLevel.RELAXED for q in downgraded
    )
