"""Experiment C8 — the hybrid's cost crossover (paper §1).

Paper claims: serverless (pure-CF) engines are "less scalable and 1-2
orders of magnitude more expensive than MPP query engines running in
provisioned VM clusters" *for sustained workloads*, while only CFs can
absorb sudden spikes; the hybrid Pixels-Turbo gets both.

The bench sweeps a workload from fully sustained to fully spiky and runs
it on three engines — pure-VM (autoscaled, no CF), pure-CF (Athena-like),
and hybrid Turbo — comparing provider cost and immediate-query pending
time.  Expected shape: pure-CF costs ≥ an order of magnitude more than
pure-VM on the sustained end; pure-VM suffers long pending on the spiky
end; the hybrid tracks VM cost while keeping spike pending at zero.
"""

import numpy as np
import pytest

from common import (
    HEAVY_SQL,
    bench_record,
    export_ledger_audit,
    format_row,
    report,
    tpch_environment,
)
from repro.baselines import PureCfCoordinator, PureVmCoordinator, run_workload
from repro.baselines.runner import Submission
from repro.core import ServiceLevel
from repro.turbo import Coordinator, TurboConfig
from repro.workloads import spike_arrivals, steady_arrivals

ENGINES = {
    "pure-VM": PureVmCoordinator,
    "pure-CF": PureCfCoordinator,
    "hybrid": Coordinator,
}


def build_workload(spiky_fraction: float, rng) -> list[Submission]:
    """Blend a sustained stream with a spike.

    240 queries/hour keeps the provisioned cluster well utilized on the
    sustained end — the regime in which the paper compares MPP engines
    against serverless ones.
    """
    total = 240
    steady_count = int(total * (1 - spiky_fraction))
    times = steady_arrivals(rng, 3600.0, steady_count / 3600.0)
    spikes = spike_arrivals(
        rng, 3600.0, 0.0, spike_at_s=1800.0,
        spike_queries=total - len(times), spike_spread_s=2.0,
    )
    # Sustained traffic is the non-urgent class -> relaxed level; the
    # spike is urgent -> immediate.  This is exactly the classification
    # the paper's service levels exist to express (§1, §5).
    submissions = [Submission(t, HEAVY_SQL, ServiceLevel.RELAXED) for t in times]
    submissions += [
        Submission(t, HEAVY_SQL, ServiceLevel.IMMEDIATE) for t in spikes
    ]
    return sorted(submissions, key=lambda s: s.time)


def run_experiment():
    store, catalog = tpch_environment()
    config = TurboConfig.experiment()
    grid = {}
    results = {}
    for spiky_fraction in (0.0, 0.5, 1.0):
        rng = np.random.default_rng(8)
        submissions = build_workload(spiky_fraction, rng)
        for engine_name, engine_cls in ENGINES.items():
            result = run_workload(
                submissions, store, catalog, "tpch", config,
                coordinator_cls=engine_cls, observe=True,
            )
            pending = result.pending_times(ServiceLevel.IMMEDIATE)
            if not pending:  # fully sustained mixes have no spike queries
                pending = [0.0]
            grid[(spiky_fraction, engine_name)] = {
                "cost": result.provider_cost(),
                "mean_pending": float(np.mean(pending)),
                "max_pending": float(np.max(pending)),
            }
            results[(spiky_fraction, engine_name)] = result
    return grid, results


def grid_metrics(pair):
    grid, _ = pair
    return {
        f"{engine}@{fraction:.1f}:{key}": round(value, 9)
        for (fraction, engine), cell in sorted(grid.items())
        for key, value in sorted(cell.items())
    }


def test_c8_hybrid_crossover(benchmark):
    grid, results = benchmark.pedantic(
        lambda: bench_record("c8", run_experiment, grid_metrics),
        rounds=1, iterations=1,
    )
    # Billing audit across the whole sweep: every query of every engine
    # at every mix reconciles exactly (and the ledgers land in
    # results/ for the CI replay gate).
    for (fraction, engine), result in sorted(results.items()):
        export_ledger_audit(
            f"c8_{engine.replace('-', '').lower()}_{int(fraction * 10):02d}",
            result,
        )

    lines = [
        format_row(
            "spiky frac", "engine", "provider $", "spike mean", "spike max",
            widths=[10, 10, 12, 10, 10],
        )
    ]
    for (fraction, engine), cell in sorted(grid.items()):
        lines.append(
            format_row(
                f"{fraction:.1f}", engine,
                f"{cell['cost']:.4f}",
                f"{cell['mean_pending']:.0f}s",
                f"{cell['max_pending']:.0f}s",
                widths=[10, 10, 12, 10, 10],
            )
        )
    sustained_ratio = grid[(0.0, "pure-CF")]["cost"] / grid[(0.0, "pure-VM")]["cost"]
    hybrid_vs_cf = grid[(1.0, "pure-CF")]["cost"] / grid[(1.0, "hybrid")]["cost"]
    lines += [
        "",
        f"sustained workload: pure-CF / pure-VM cost = {sustained_ratio:.1f}x "
        "(paper: 1-2 orders of magnitude)",
        f"spiky workload: pure-CF / hybrid cost = {hybrid_vs_cf:.1f}x",
        f"spiky workload: pure-VM max pending = "
        f"{grid[(1.0, 'pure-VM')]['max_pending']:.0f}s vs hybrid "
        f"{grid[(1.0, 'hybrid')]['max_pending']:.0f}s",
    ]
    report("C8  Hybrid cost/latency crossover, paper §1", lines)

    # Who wins, by roughly what factor (shape, not absolute numbers):
    assert sustained_ratio >= 10.0  # 1-2 orders of magnitude (>=10x)
    # The hybrid matches pure-VM cost on sustained load (no CF needed)...
    assert grid[(0.0, "hybrid")]["cost"] <= grid[(0.0, "pure-VM")]["cost"] * 1.5
    # ...while only VM-less engines keep spike pending at zero.
    assert grid[(1.0, "pure-VM")]["max_pending"] > 30.0
    assert grid[(1.0, "hybrid")]["max_pending"] == 0.0
    assert grid[(1.0, "pure-CF")]["max_pending"] == 0.0
    # And the hybrid's spike is cheaper than all-CF-all-the-time.
    assert grid[(1.0, "hybrid")]["cost"] < grid[(1.0, "pure-CF")]["cost"] * 1.2
