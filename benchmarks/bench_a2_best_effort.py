"""Ablation A2 — best-of-effort queries as anti-scale-in filler (§3.2(3)).

Paper claims: best-of-effort queries "are only executed when the VM
cluster is likely to scale in.  This helps the VM cluster avoid
unnecessary scaling-in and produces very little extra costs."

The ablation runs a bursty interactive workload twice — once with a
backlog of best-of-effort batch queries submitted alongside it, once
without — and compares scale-in events, cluster utilization, and the
marginal provider cost of running the batch.
"""

import numpy as np
import pytest

from common import HEAVY_SQL, MEDIUM_SQL, format_row, report, tpch_environment
from repro.baselines import run_workload
from repro.baselines.runner import Submission
from repro.core import ServiceLevel
from repro.turbo import TurboConfig
from repro.workloads import bursty_arrivals

BATCH_QUERIES = 30


def run_variant(with_batch: bool):
    store, catalog = tpch_environment()
    rng = np.random.default_rng(21)
    interactive = bursty_arrivals(
        rng, duration_s=5400, base_rate_per_s=0.01,
        burst_rate_per_s=0.5, burst_every_s=1200, burst_length_s=120,
    )
    submissions = [
        Submission(t, HEAVY_SQL, ServiceLevel.RELAXED) for t in interactive
    ]
    if with_batch:
        submissions += [
            Submission(600.0 + i, MEDIUM_SQL, ServiceLevel.BEST_EFFORT)
            for i in range(BATCH_QUERIES)
        ]
    return run_workload(submissions, store, catalog, "tpch",
                        TurboConfig.experiment())


def run_experiment():
    return {"without batch": run_variant(False), "with batch": run_variant(True)}


def test_a2_best_effort_filler(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    summary = {}
    for name, result in results.items():
        cluster = result.coordinator.vm_cluster
        relaxed_pending = result.pending_times(ServiceLevel.RELAXED)
        summary[name] = {
            "scale_in": cluster.scale_in_events,
            "provider": result.provider_cost(),
            "relaxed_p95": float(np.percentile(relaxed_pending, 95)),
            "batch_done": len(result.finished(ServiceLevel.BEST_EFFORT)),
            "batch_billed": result.billed(ServiceLevel.BEST_EFFORT),
        }
    without = summary["without batch"]
    with_batch = summary["with batch"]
    marginal = with_batch["provider"] - without["provider"]
    lines = [
        format_row("variant", "scale-ins", "provider $", "relaxed p95"),
        format_row(
            "without batch", without["scale_in"],
            f"{without['provider']:.4f}", f"{without['relaxed_p95']:.1f}s",
        ),
        format_row(
            "with batch", with_batch["scale_in"],
            f"{with_batch['provider']:.4f}", f"{with_batch['relaxed_p95']:.1f}s",
        ),
        "",
        f"{with_batch['batch_done']}/{BATCH_QUERIES} best-of-effort queries "
        f"completed, billed ${with_batch['batch_billed']:.4f}",
        f"marginal provider cost of the whole batch: ${marginal:.4f} "
        f"({100 * marginal / without['provider']:.0f}% of the baseline)",
    ]
    report("A2  Ablation: best-of-effort as anti-scale-in filler, §3.2(3)", lines)

    # The filler keeps otherwise-idle workers busy: scale-in does not
    # increase, and the marginal cost of 30 extra queries is small
    # because they ride capacity that was already paid for.
    assert with_batch["batch_done"] == BATCH_QUERIES
    assert with_batch["scale_in"] <= without["scale_in"] + 1
    assert marginal <= 0.5 * without["provider"]
    # And it never used CF: batch work is VM-only by construction.
    assert not any(
        q.execution.cf_workers
        for q in results["with batch"].finished(ServiceLevel.BEST_EFFORT)
    )
    # Interactive latency is not destroyed by the filler.
    assert with_batch["relaxed_p95"] <= without["relaxed_p95"] * 2 + 30
