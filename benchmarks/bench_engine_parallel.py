"""Morsel-driven parallel execution benchmark (engine support measurement).

Measures what the morsel driver actually buys in the paper's disaggregated
setting: overlap of object-store GET round trips across row-group morsels.
The production :class:`~repro.storage.object_store.ObjectStore` models GET
latency arithmetically (so accounting stays deterministic); here a store
subclass *really blocks* for a scaled-down round trip per ranged GET, and
the scan/filter/agg suite is timed at 1 vs 4 workers.

Two things are recorded:

* ``metrics`` (gated exactly by the perf gate): per-query rows, billed
  bytes, GET counts, and a result checksum — all asserted identical
  between the sequential and parallel runs, which is the worker-count
  invariance contract.
* ``meta`` (ungated, machine-dependent): the measured wall-clock speedup
  at 4 workers, asserted >= 1.5x here so a scheduling regression that
  serializes morsels fails the bench even though wall time is never gated.
"""

import hashlib
import time

import numpy as np

from common import bench_record, report
from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.storage.catalog import Catalog, ColumnMeta
from repro.storage.object_store import ObjectStore
from repro.storage.table import TableData, TableWriter
from repro.storage.types import ColumnVector, DataType

NUM_ROWS = 200_000
ROWS_PER_FILE = 50_000
ROWS_PER_GROUP = 6_250  # -> 32 row groups = 32 morsels
GET_SLEEP_S = 0.008  # emulated object-store GET round trip (scaled down)
PARALLEL_WORKERS = 4
MIN_SPEEDUP = 1.5
REPEATS = 2  # wall-time samples per (query, worker-count); min is kept

QUERIES = {
    "scan": "SELECT COUNT(*) AS n, SUM(k) AS s FROM metrics",
    "filter": "SELECT COUNT(*) AS n, MAX(k) AS m FROM metrics WHERE v > 0.5",
    "agg": (
        "SELECT g, COUNT(*) AS n, SUM(w) AS s, MIN(k) AS lo, MAX(k) AS hi "
        "FROM metrics WHERE v > 0.2 GROUP BY g"
    ),
}


class LatencyStore(ObjectStore):
    """Object store whose ranged GETs block for a real round trip.

    Sleeping (instead of spinning) matters: it is what lets worker threads
    overlap in-flight GETs, exactly like concurrent requests against S3 —
    so the measured speedup reflects latency hiding, not CPU parallelism,
    and holds even on a single-core runner.
    """

    def read_range(self, bucket, key, start=0, length=None):
        payload = super().read_range(bucket, key, start, length)
        time.sleep(GET_SLEEP_S)
        return payload


def _environment():
    rng = np.random.default_rng(42)
    store = LatencyStore()
    store.create_bucket("bench")
    keys = np.arange(NUM_ROWS, dtype=np.int64)
    table = TableData(
        {
            "k": ColumnVector(DataType.BIGINT, keys),
            "g": ColumnVector(DataType.BIGINT, (keys * 2654435761) % 100),
            "v": ColumnVector(DataType.DOUBLE, rng.random(NUM_ROWS)),
            "w": ColumnVector(
                DataType.BIGINT,
                rng.integers(0, 1000, NUM_ROWS, dtype=np.int64),
            ),
        }
    )
    TableWriter(
        store,
        "bench",
        "metrics",
        rows_per_file=ROWS_PER_FILE,
        rows_per_group=ROWS_PER_GROUP,
    ).write(table)
    catalog = Catalog()
    catalog.create_schema("bench", comment="parallel-execution micro table")
    catalog.create_table(
        "bench",
        "metrics",
        [
            ColumnMeta("k", DataType.BIGINT, "row key"),
            ColumnMeta("g", DataType.BIGINT, "group key (100 groups)"),
            ColumnMeta("v", DataType.DOUBLE, "uniform value"),
            ColumnMeta("w", DataType.BIGINT, "weight"),
        ],
        bucket="bench",
        prefix="metrics",
    )
    return store, Planner(catalog, "bench"), Optimizer()


def _timed_run(store, plan, workers):
    """One execution at ``workers``; returns (result, gets, wall_seconds)."""
    before_gets = store.metrics.get_requests
    executor = QueryExecutor(
        ObjectStoreSource(store), workers=workers, batch_size=ROWS_PER_GROUP
    )
    started = time.perf_counter()
    result = executor.execute(plan)
    wall = time.perf_counter() - started
    return result, store.metrics.get_requests - before_gets, wall


def _checksum(result) -> str:
    payload = repr((result.column_names, result.rows())).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def test_morsel_parallel_speedup():
    store, planner, optimizer = _environment()
    meta = {
        "workers": PARALLEL_WORKERS,
        "morsels": NUM_ROWS // ROWS_PER_GROUP,
        "get_sleep_s": GET_SLEEP_S,
    }

    def run():
        observed = {}
        for name, sql in QUERIES.items():
            plan = optimizer.optimize(planner.plan_sql(sql))
            sequential = parallel = None
            seq_walls, par_walls = [], []
            for _ in range(REPEATS):
                sequential, seq_gets, wall = _timed_run(store, plan, 1)
                seq_walls.append(wall)
            for _ in range(REPEATS):
                parallel, par_gets, wall = _timed_run(
                    store, plan, PARALLEL_WORKERS
                )
                par_walls.append(wall)
            # Worker-count invariance: same rows, same billing basis,
            # same GET count — parallelism must be unobservable except
            # in wall time.
            assert parallel.rows() == sequential.rows(), name
            assert parallel.stats.bytes_scanned == sequential.stats.bytes_scanned
            assert par_gets == seq_gets, name
            observed[name] = {
                "rows_produced": sequential.stats.rows_produced,
                "rows_scanned": sequential.stats.rows_scanned,
                "bytes_scanned": sequential.stats.bytes_scanned,
                "get_requests": seq_gets,
                "checksum": _checksum(sequential),
            }
            # min: the latency floor is the honest sample for sleep-bound
            # timings; scheduler noise only ever adds.
            meta[f"seq_wall_s_{name}"] = round(min(seq_walls), 4)
            meta[f"par_wall_s_{name}"] = round(min(par_walls), 4)
            meta[f"speedup_{name}"] = round(min(seq_walls) / min(par_walls), 3)
        suite_seq = sum(meta[f"seq_wall_s_{name}"] for name in QUERIES)
        suite_par = sum(meta[f"par_wall_s_{name}"] for name in QUERIES)
        meta["speedup_suite"] = round(suite_seq / suite_par, 3)
        return observed

    observed = bench_record(
        "engine_parallel", run, lambda result: result, rounds=2, meta=meta
    )
    suite_speedup = meta["speedup_suite"]
    report(
        "engine_parallel: morsel-driven scan speedup",
        [
            f"{name}: {observed[name]['get_requests']} GETs, "
            f"{meta[f'seq_wall_s_{name}']:.3f}s -> "
            f"{meta[f'par_wall_s_{name}']:.3f}s "
            f"({meta[f'speedup_{name}']:.2f}x at {PARALLEL_WORKERS} workers)"
            for name in QUERIES
        ]
        + [f"suite: {suite_speedup:.2f}x"],
    )
    assert suite_speedup >= MIN_SPEEDUP, (
        f"morsel parallelism regressed: {suite_speedup:.2f}x < {MIN_SPEEDUP}x "
        f"at {PARALLEL_WORKERS} workers"
    )
