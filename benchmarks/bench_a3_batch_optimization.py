"""Ablation A3 — batch query optimization via shared scans (paper §5).

The paper's conclusion: deferring non-urgent queries "provides
opportunities for batch query optimization".  This reproduction implements
the canonical such optimization — scan sharing — for queued best-of-effort
queries, and the ablation measures what it buys: a reporting backlog of
queries over the same fact table, dispatched one-by-one vs as shared-scan
batches, comparing object-store bytes read, batch makespan, and provider
cost.  Results must be identical either way.
"""

import dataclasses

import pytest

from common import format_row, report
from repro.core import QueryServer, QueryStatus, ServiceLevel
from repro.storage.cache import CacheConfig
from repro.sim import Simulator
from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.turbo import Coordinator, TurboConfig
from repro.workloads import TpchGenerator, load_dataset

# A nightly reporting backlog: 9 queries over the lineitem fact table.
BACKLOG = [
    "SELECT l_returnflag, sum(l_extendedprice) FROM lineitem GROUP BY l_returnflag",
    "SELECT l_linestatus, sum(l_extendedprice) FROM lineitem GROUP BY l_linestatus",
    "SELECT l_shipmode, sum(l_extendedprice) FROM lineitem GROUP BY l_shipmode",
    "SELECT sum(l_extendedprice * (1 - l_discount)) FROM lineitem",
    "SELECT avg(l_quantity) FROM lineitem WHERE l_discount > 0.05",
    "SELECT l_returnflag, avg(l_extendedprice) FROM lineitem GROUP BY l_returnflag",
    "SELECT count(*) FROM lineitem WHERE l_quantity > 25",
    "SELECT l_shipmode, max(l_extendedprice) FROM lineitem GROUP BY l_shipmode",
    "SELECT min(l_extendedprice), max(l_extendedprice) FROM lineitem",
]
BLOCKER = "SELECT o_orderstatus, count(*) FROM orders GROUP BY o_orderstatus"


def run_variant(batch_mode: bool):
    sim = Simulator(seed=6)
    store = ObjectStore()
    catalog = Catalog()
    load_dataset(store, catalog, "tpch", TpchGenerator(scale=0.2).tables())
    # Ablate with the buffer pool off: a warm pool already deduplicates
    # repeated chunk reads across the one-by-one backlog, which would mask
    # the physical bytes the *sharing* mechanism itself saves.
    config = dataclasses.replace(
        TurboConfig.experiment(300.0), cache=CacheConfig(enabled=False)
    )
    coordinator = Coordinator(sim, config, catalog, store, "tpch")
    server = QueryServer(sim, coordinator, config, batch_best_effort=batch_mode)
    loaded = store.metrics.snapshot()
    # Hold the cluster busy briefly so the backlog queues, then drains.
    for _ in range(3):
        server.submit(BLOCKER, ServiceLevel.RELAXED)
    backlog = [server.submit(sql, ServiceLevel.BEST_EFFORT) for sql in BACKLOG]
    sim.run_until(7200)
    first_start = min(q.execution.started_at for q in backlog)
    last_finish = max(q.execution.finished_at for q in backlog)
    return {
        "records": backlog,
        "bytes_read": store.metrics.delta(loaded).bytes_read,
        "makespan": last_finish - first_start,
        "provider": coordinator.total_provider_cost(),
        "saved": sum(coordinator.trace.values("batch.bytes_saved")),
    }


def run_experiment():
    return {
        "one-by-one": run_variant(False),
        "shared-scan batch": run_variant(True),
    }


def test_a3_batch_optimization(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = [
        format_row("variant", "bytes read", "makespan", "provider $"),
    ]
    for name, cells in results.items():
        lines.append(
            format_row(
                name,
                f"{cells['bytes_read'] / 1e6:.2f} MB",
                f"{cells['makespan']:.0f}s",
                f"{cells['provider']:.4f}",
            )
        )
    solo = results["one-by-one"]
    batch = results["shared-scan batch"]
    lines += [
        "",
        f"bytes saved by sharing (batch accounting): "
        f"{batch['saved'] / 1e6:.2f} MB",
        "results identical across variants: "
        f"{all(a.result_rows() == b.result_rows() for a, b in zip(solo['records'], batch['records']))}",
    ]
    report("A3  Ablation: shared-scan batch optimization, paper §5", lines)

    assert all(
        r.status is QueryStatus.FINISHED
        for cells in results.values()
        for r in cells["records"]
    )
    # Same answers, fewer bytes, shorter batch window, no extra cost.
    for a, b in zip(solo["records"], batch["records"]):
        assert a.result_rows() == b.result_rows()
    assert batch["bytes_read"] < solo["bytes_read"]
    assert batch["makespan"] <= solo["makespan"]
    assert batch["provider"] <= solo["provider"] * 1.05
    assert batch["saved"] > 0
