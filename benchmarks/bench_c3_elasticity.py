"""Experiment C3 — provisioning elasticity: CF vs VM (paper §2).

Paper claims: the CF service can "create hundreds of workers in 1 second",
while the VM cluster "requires 1-2 minutes to scale" after a workload
change.

The bench applies a step demand to both resource types and records the
workers-available-vs-time curve: CF reaches the full fleet within its
startup second; the VM cluster only starts adding workers after the
scale-out lag has elapsed.
"""

import pytest

from common import bench_record, format_row, report
from repro.sim import Simulator
from repro.turbo.cf_service import CfService
from repro.turbo.config import CfConfig, VmConfig
from repro.turbo.vm_cluster import VmCluster, VmTask

DEMAND = 200  # workers (CF) / queued queries (VM)


def run_experiment():
    # CF side: the provisioning curve is startup-bound.
    cf_curve = CfService(Simulator(), CfConfig(), VmConfig()).provisioning_curve(
        demand=DEMAND, horizon_s=300.0
    )
    # VM side: flood the cluster with queued work at t=0 and watch the
    # worker count respond under the paper's watermark autoscaler.
    sim = Simulator()
    cluster = VmCluster(sim, VmConfig(max_workers=64))
    for index in range(DEMAND):
        cluster.submit(VmTask(task_id=f"t{index}", on_start=lambda w: None))
    sim.run_until(600.0)
    vm_curve = [
        (point.time, int(point.value))
        for point in cluster.trace.series("vm.workers")
    ]
    return cf_curve, vm_curve


def first_growth_time(curve):
    initial = curve[0][1]
    for time, value in curve:
        if value > initial:
            return time
    return float("inf")


def curve_metrics(curves):
    """Deterministic trajectory metrics for the perf gate (no workload
    here, so the generic workload set does not apply)."""
    cf_curve, vm_curve = curves
    return {
        "cf_seconds_to_full": round(
            next(t for t, n in cf_curve if n >= DEMAND), 9
        ),
        "vm_first_growth_s": round(first_growth_time(vm_curve), 9),
        "vm_peak_workers": max(n for _, n in vm_curve),
        "cf_curve_points": len(cf_curve),
        "vm_curve_points": len(vm_curve),
    }


def test_c3_elasticity(benchmark):
    cf_curve, vm_curve = benchmark.pedantic(
        lambda: bench_record("c3", run_experiment, curve_metrics),
        rounds=1, iterations=1,
    )

    cf_full = next(t for t, n in cf_curve if n >= DEMAND)
    vm_first = first_growth_time(vm_curve)
    vm_peak = max(n for _, n in vm_curve)
    vm_peak_time = next(t for t, n in vm_curve if n == vm_peak)

    lines = [
        format_row("resource", "paper", "measured"),
        format_row(
            "CF: time to 200 workers", "~1 s", f"{cf_full:.1f} s"
        ),
        format_row(
            "VM: time to first new worker", "1-2 min", f"{vm_first:.0f} s"
        ),
        format_row(
            "VM: peak workers (by t)", "-", f"{vm_peak} at t={vm_peak_time:.0f}s"
        ),
        "",
        "VM worker curve (changes only):",
    ]
    last = None
    for time, value in vm_curve:
        if value != last:
            lines.append(f"  t={time:6.0f}s  workers={value}")
            last = value
    report("C3  Provisioning elasticity: CF seconds vs VM minutes, paper §2", lines)

    assert cf_full <= 1.0
    assert 60.0 <= vm_first <= 150.0  # scale-out lag + one evaluation tick
    assert vm_peak > 1
