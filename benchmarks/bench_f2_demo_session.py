"""Experiment F2 — Figure 2: the main UI state after the demo session.

Figure 2 is a screenshot of Pixels-Rover mid-session: the schema browser
on the left, the translator with question/SQL blocks in the middle, and
the query-result area with coloured status blocks on the right.  The
bench replays the §4 demonstration script and re-renders the backend
state the screenshot displays, asserting the §4.3 invariants: blocks
ascend by submission time, each level has its own colour, every block is
in one of the four statuses, and double-click linkage resolves both ways.
"""

import pytest

from common import report
from repro import PixelsDB, TurboConfig, UserStore
from repro.core import QueryStatus, ServiceLevel


def run_experiment():
    db = PixelsDB(config=TurboConfig.experiment(100.0), seed=2)
    db.load_tpch("tpch", scale=0.05)
    users = UserStore()
    users.register("demo", "demo", {"tpch"})
    rover = db.rover(users, "tpch")
    token = rover.login("demo", "demo")
    rover.select_database(token, "tpch")

    script = [
        ("How many orders are there?", "immediate"),
        ("What is the total price per order status?", "relaxed"),
        ("Top 3 customers by account balance", "best-of-effort"),
        ("How many different customers have placed orders?", "relaxed"),
    ]
    blocks = []
    for question, level in script:
        block = rover.ask(token, question)
        blocks.append(block)
        db.run(5.0)  # the user thinks between actions
        rover.submit_query(token, block.block_id, level)
        db.run(5.0)
    db.run_to_completion()
    return db, rover, token, blocks


def test_f2_demo_session(benchmark):
    db, rover, token, blocks = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    tree = rover.schema_tree(token, "tpch")
    results = rover.result_blocks(token)

    lines = ["schema browser (left sidebar):"]
    for table in tree["tables"]:
        lines.append(
            f"  {table['name']:<10} ({len(table['columns'])} columns)"
        )
    lines.append("")
    lines.append("translator (centre): question -> SQL code block")
    for block in blocks:
        lines.append(f"  Q: {block.question}")
        lines.append(f"     {block.sql}")
    lines.append("")
    lines.append("query result area (right): ascending submission time")
    for result in results:
        expanded = rover.expand_result(token, result.result_id)
        lines.append(
            f"  t={result.submitted_at:5.1f}s [{result.color}] "
            f"{result.level.value:<12} {result.status.value}"
        )
    report("F2  Figure 2: main UI state after the §4 demo session", lines)

    # §4.3 invariants.
    times = [result.submitted_at for result in results]
    assert times == sorted(times)
    level_colors = {result.level: result.color for result in results}
    assert len(set(level_colors.values())) == 3
    assert all(
        result.status in (QueryStatus.FINISHED, QueryStatus.FAILED)
        for result in results
    )
    assert all(result.status is QueryStatus.FINISHED for result in results)
    for result in results:  # double-click linkage, both directions
        origin = rover.origin_of(token, result.result_id)
        assert result.result_id in origin.result_ids
    # Finished blocks expose the §4.3 statistics.
    expanded = rover.expand_result(token, results[0].result_id)
    assert {"pending_time_s", "execution_time_s", "monetary_cost"} <= set(expanded)
