"""The CI perf gate: fresh bench records vs committed baselines.

Every bench routed through :func:`common.bench_record` writes a fresh
record to ``benchmarks/results/bench_<slug>.json``; the committed
baseline lives at ``BENCH_<slug>.json`` in the repo root.  This script
compares the two with per-metric tolerance:

* **deterministic metrics** (logical bytes scanned, GET counts, billed
  $, finished queries, simulated seconds) must match **exactly** —
  they are simulation outputs, so any drift is a real behavior change,
  not noise;
* **wall time** is only compared when ``--wall-band`` is given (a
  fractional regression allowance, e.g. ``0.5`` = fresh median may be
  up to 50% above baseline).  CI leaves it off so the gate is
  flake-free on shared runners.

Exit status is non-zero on any violation.  After an *intentional* perf
change, refresh the baselines with ``BENCH_UPDATE=1`` (see
``bench_record``) or ``python benchmarks/perf_gate.py --update`` and
commit the new ``BENCH_*.json``.

``--explain`` adds root-cause lines for every violated slug: when both
records carry a ``"profile"`` section (per-operator resource totals —
see ``common.workload_profile``), the profile diff names the operator
and the resource (bandwidth/requests/compute/pricing) that moved;
otherwise the changed metric names themselves are classified by the
resource they implicate.
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import shutil
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: Relative tolerance for float-valued deterministic metrics: covers
#: serialization round-trip only, not behavior drift.
FLOAT_RTOL = 1e-9


def baseline_path(slug: str) -> str:
    return os.path.join(_REPO_ROOT, f"BENCH_{slug}.json")


def fresh_path(slug: str) -> str:
    return os.path.join(_RESULTS_DIR, f"bench_{slug}.json")


def discover_slugs() -> list[str]:
    """Slugs of every committed ``BENCH_<slug>.json`` baseline."""
    slugs = []
    for path in sorted(glob.glob(os.path.join(_REPO_ROOT, "BENCH_*.json"))):
        name = os.path.basename(path)
        slugs.append(name[len("BENCH_"):-len(".json")])
    return slugs


def _values_match(baseline, fresh) -> bool:
    if isinstance(baseline, bool) or isinstance(fresh, bool):
        return baseline == fresh
    if isinstance(baseline, (int, float)) and isinstance(fresh, (int, float)):
        if isinstance(baseline, int) and isinstance(fresh, int):
            return baseline == fresh
        return math.isclose(baseline, fresh, rel_tol=FLOAT_RTOL, abs_tol=0.0)
    return baseline == fresh


def compare_records(
    baseline: dict, fresh: dict, wall_band: float | None = None
) -> list[str]:
    """Violations (empty list = pass) between one baseline/fresh pair.

    Deterministic metrics: exact (ints) or FLOAT_RTOL (floats).
    Wall: fresh median ≤ baseline median × (1 + wall_band), only when a
    band is supplied.
    """
    slug = baseline.get("slug", "?")
    violations: list[str] = []
    if baseline.get("schema_version") != fresh.get("schema_version"):
        return [
            f"{slug}: schema_version mismatch "
            f"(baseline {baseline.get('schema_version')}, "
            f"fresh {fresh.get('schema_version')}) — refresh the baseline"
        ]
    base_metrics = baseline.get("metrics", {}) or {}
    fresh_metrics = fresh.get("metrics", {}) or {}
    for name in sorted(base_metrics):
        if name not in fresh_metrics:
            violations.append(f"{slug}: metric {name!r} missing from fresh run")
            continue
        if not _values_match(base_metrics[name], fresh_metrics[name]):
            violations.append(
                f"{slug}: {name} regressed/changed: "
                f"baseline {base_metrics[name]!r} != fresh {fresh_metrics[name]!r}"
            )
    for name in sorted(set(fresh_metrics) - set(base_metrics)):
        violations.append(
            f"{slug}: new metric {name!r} not in baseline — refresh the baseline"
        )
    if wall_band is not None:
        base_wall = (baseline.get("wall") or {}).get("median_s")
        fresh_wall = (fresh.get("wall") or {}).get("median_s")
        if base_wall and fresh_wall and fresh_wall > base_wall * (1.0 + wall_band):
            violations.append(
                f"{slug}: wall median {fresh_wall:.3f}s exceeds baseline "
                f"{base_wall:.3f}s by more than {wall_band:.0%}"
            )
    return violations


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


# -- root-causing (--explain) ---------------------------------------------------

#: Metric-name needles → the resource a drift in that metric implicates
#: (the fallback classification when records carry no profile section).
_METRIC_RESOURCES = (
    ("bytes", "bandwidth"),
    ("get", "requests"),
    ("seconds", "compute"),
    ("dollar", "pricing"),
)


def _metric_resource(name: str) -> str:
    lowered = name.lower()
    for needle, resource in _METRIC_RESOURCES:
        if needle in lowered:
            return resource
    return "unknown"


def _import_profdiff():
    """Import repro.obs.profdiff, falling back to the source tree when
    the package is not installed (plain checkouts, some CI stages)."""
    try:
        from repro.obs import profdiff
    except ImportError:
        sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))
        from repro.obs import profdiff
    return profdiff


def explain_records(baseline: dict, fresh: dict, limit: int = 5) -> list[str]:
    """Root-cause lines for one failed baseline comparison.

    With ``"profile"`` sections on both sides, the per-operator diff
    says which operator regressed in which resource; without them, the
    changed metrics are classified by name.  Empty when nothing moved.
    """
    slug = baseline.get("slug", "?")
    base_profile = baseline.get("profile")
    fresh_profile = fresh.get("profile")
    if base_profile and fresh_profile:
        profdiff = _import_profdiff()
        deltas = profdiff.diff_operator_tables(base_profile, fresh_profile)
        if deltas:
            rendered = profdiff.render_diff(
                deltas, limit=limit, prefix=f"{slug}: "
            )
            return rendered.splitlines()
    lines: list[str] = []
    base_metrics = baseline.get("metrics", {}) or {}
    fresh_metrics = fresh.get("metrics", {}) or {}
    for name in sorted(set(base_metrics) | set(fresh_metrics)):
        base_value = base_metrics.get(name)
        fresh_value = fresh_metrics.get(name)
        if not _values_match(base_value, fresh_value):
            lines.append(
                f"{slug}: {name} implicates {_metric_resource(name)}: "
                f"baseline {base_value!r} -> fresh {fresh_value!r}"
            )
    return lines[:limit]


def run_gate(
    slugs: list[str] | None = None,
    wall_band: float | None = None,
    update: bool = False,
) -> tuple[list[str], list[str]]:
    """Gate every requested slug; returns (checked, violations)."""
    slugs = slugs if slugs else discover_slugs()
    checked: list[str] = []
    violations: list[str] = []
    for slug in slugs:
        base = baseline_path(slug)
        fresh = fresh_path(slug)
        if not os.path.exists(fresh):
            violations.append(
                f"{slug}: no fresh record at {os.path.relpath(fresh, _REPO_ROOT)}"
                " — did the bench run?"
            )
            continue
        if update:
            shutil.copyfile(fresh, base)
            checked.append(slug)
            continue
        if not os.path.exists(base):
            violations.append(
                f"{slug}: no committed baseline BENCH_{slug}.json — run with"
                " --update (or BENCH_UPDATE=1) and commit it"
            )
            continue
        checked.append(slug)
        violations.extend(compare_records(_load(base), _load(fresh), wall_band))
    return checked, violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "slugs", nargs="*",
        help="slugs to gate (default: every committed BENCH_*.json)",
    )
    parser.add_argument(
        "--wall-band", type=float, default=None, metavar="FRACTION",
        help="also gate wall-time medians with this fractional allowance",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="copy fresh records over the committed baselines instead of gating",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="on failure, print per-slug root-cause lines from the records'"
             " profile sections (operator + resource)",
    )
    args = parser.parse_args(argv)
    checked, violations = run_gate(
        slugs=args.slugs or None, wall_band=args.wall_band, update=args.update
    )
    if args.update:
        print(f"perf-gate: refreshed {len(checked)} baseline(s): "
              + ", ".join(checked))
        return 0
    for violation in violations:
        print(f"perf-gate: FAIL {violation}", file=sys.stderr)
    if violations and args.explain:
        violated = {v.split(":", 1)[0] for v in violations}
        for slug in sorted(violated & set(checked)):
            for line in explain_records(
                _load(baseline_path(slug)), _load(fresh_path(slug))
            ):
                print(f"perf-gate: cause {line}", file=sys.stderr)
    print(
        f"perf-gate: {len(checked)} baseline(s) checked, "
        f"{len(violations)} violation(s)"
    )
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
