"""Export the fleet-observability bundle for the log-analytics workload.

Runs the canned log-analysis query set (the paper's §3.1 "non-urgent"
batch class) under ``observe=True`` with a tail-based capture policy and
per-tenant spend accounting, and writes the workload-scope artifacts
into ``results/`` (or the directory given as argv[1]):

* ``fleet_statements_top.txt`` — pg_stat_statements-style top-K by $,
* ``fleet_statements.json``    — the full statement-statistics export,
* ``fleet_journal.jsonl``      — the trace-correlated query journal,
* ``fleet_ledger.jsonl``       — the metering ledger (every charge and
  void, integer nanodollars, byte-stable),
* ``fleet_spend.json``         — the per-tenant spend report with
  soft-budget status,
* ``fleet_reconciliation.json``— the billing reconciliation report,
* ``fleet_activity.json``      — the live-activity snapshot (every
  query's lifecycle record and terminal projection),
* ``fleet_projections.json``   — the estimator's projection-accuracy
  record (estimated vs. actual bill per query, aggregate MAPE),
* ``fleet_capture_flame.svg``  — the flame graph attached to one
  tail-captured query (slowest-N / $-threshold evidence).

Everything is virtual-clock-deterministic, so CI uploads the bundle and
any drift in fingerprints, plan shapes, or nanodollar attribution shows
up as a reviewable artifact diff.

**CI gate:** exits with status 1 when *any* section fails — no capture
with full profile evidence, an empty ledger or spend report, or a
billing-reconciliation invariant violation.  Every failed section is
reported, not just the first.

Usage: PYTHONPATH=../src python export_fleet_obs.py [results_dir]
"""

from __future__ import annotations

import pathlib
import sys

from repro import CapturePolicy, PixelsDB, ServiceLevel
from repro.workloads import LOGS_QUERIES

#: The fleet's billing accounts: the nightly report rotates tenants so
#: the spend report exercises per-tenant × per-level aggregation, and
#: one deliberately tiny soft budget shows the over-budget path.
FLEET_TENANTS = ("reporting", "adhoc", "ops")
FLEET_BUDGETS = {"reporting": 1e-7, "adhoc": 1.0}


def run_fleet_session() -> PixelsDB:
    """The nightly log report, submitted across all three tiers."""
    db = PixelsDB(
        observe=True,
        seed=11,
        capture=CapturePolicy(dollar_threshold=1e-7, slowest_n=4),
        tenant_budgets=dict(FLEET_BUDGETS),
    )
    db.load_logs("weblogs", num_rows=20000)
    levels = list(ServiceLevel)
    for i, sql in enumerate(LOGS_QUERIES.values()):
        db.submit(
            "weblogs",
            sql,
            levels[i % len(levels)],
            tenant=FLEET_TENANTS[i % len(FLEET_TENANTS)],
        )
        db.run(30.0)
    # A second pass of a few statements at a different tier, so the
    # store shows per-(fingerprint, level) aggregation with calls > 1.
    for sql in list(LOGS_QUERIES.values())[:3]:
        db.submit("weblogs", sql, ServiceLevel.BEST_EFFORT, tenant="adhoc")
    db.run_to_completion()
    return db


def export(results_dir: pathlib.Path) -> int:
    db = run_fleet_session()
    results_dir.mkdir(parents=True, exist_ok=True)

    failures: list[str] = []

    captures = db.journal_captures()
    evidenced = [c for c in captures if "flamegraph_svg" in c]
    reconciliation = db.reconcile()
    outputs = {
        "fleet_statements_top.txt": db.statements_top(10, "dollars"),
        "fleet_statements.json": db.statements_json(),
        "fleet_journal.jsonl": db.journal_jsonl(),
        "fleet_ledger.jsonl": db.ledger_jsonl(),
        "fleet_spend.json": db.spend_json(),
        "fleet_reconciliation.json": reconciliation.export_json(),
        "fleet_activity.json": db.activity_json(),
        "fleet_projections.json": db.projection_json(),
    }
    if evidenced:
        outputs["fleet_capture_flame.svg"] = evidenced[0]["flamegraph_svg"]
    for filename, payload in outputs.items():
        (results_dir / filename).write_text(payload, encoding="utf-8")
        print(f"wrote {results_dir / filename}")

    for entry in db.obs.statements.top(5, by="dollars"):
        print(
            f"{entry.fingerprint}  {entry.level:<12} "
            f"tenant={entry.tenant:<10} calls={entry.calls} "
            f"billed=${entry.nanodollars / 1e9:.9f}"
        )
    print(
        f"journal: {len(db.obs.journal.records())} events, "
        f"{len(captures)} captures ({len(evidenced)} with profile evidence)"
    )
    spend = db.spend_report()
    for row in spend["tenants"]:
        budget = row["budget_dollars"]
        print(
            f"spend: {row['tenant']:<10} net={row['nanodollars']} nano$ "
            f"budget={budget if budget is not None else '-'} "
            f"{'OVER BUDGET' if row['over_budget'] else ''}".rstrip()
        )
    print(reconciliation.render())

    # -- section gates: collect every failure, fail on any ----------------
    if not evidenced:
        failures.append(
            "no journal capture carries profile evidence — "
            "the tail-based capture path is dead"
        )
    if not db.ledger_jsonl():
        failures.append("the metering ledger is empty — billing left no trail")
    if not spend["tenants"]:
        failures.append("the spend report has no tenants — tenant threading broke")
    if "reporting" not in {row["tenant"] for row in spend["tenants"]}:
        failures.append("tenant 'reporting' missing from the spend report")
    if not reconciliation.ok:
        failures.append(
            "billing reconciliation violated "
            f"{len(reconciliation.violations)} invariant(s)"
        )
    activity = db.activity()
    projections = db.projection_report()
    print(
        f"activity: {len(activity.get('queries', []))} queries tracked, "
        f"states {activity.get('states', {})}"
    )
    print(
        f"projections: {projections['queries']} accuracy records, "
        f"MAPE {projections['mape']:.9f}"
    )
    if not activity.get("queries"):
        failures.append(
            "the activity snapshot tracked no queries — lifecycle wiring broke"
        )
    elif set(activity.get("states", {})) - {"billed"}:
        failures.append(
            "a query ended in a non-billed state after run_to_completion: "
            f"{activity['states']}"
        )
    if projections["queries"] == 0:
        failures.append(
            "no projection-accuracy records — the estimator never scored"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "OK: capture evidence, metering ledger, tenant spend, billing "
        "reconciliation, live activity, and projection accuracy all live"
    )
    return 0


if __name__ == "__main__":
    target = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    sys.exit(export(target))
