"""Experiment C1 — per-level prices (paper §3.2).

Paper claims: immediate queries are billed at AWS Athena's rate of
$5/TB-scan; relaxed at 20 % ($1/TB); best-of-effort at 10 % ($0.5/TB).

The bench runs a mixed-level workload end-to-end through the query server
and measures the *effective* $/TB actually billed per level (total bill
divided by total TB scanned), checking it lands exactly on the paper's
price table.
"""

import pytest

from common import (
    HEAVY_SQL,
    MEDIUM_SQL,
    bench_record,
    export_ledger_audit,
    format_row,
    report,
    tpch_environment,
    workload_metrics,
)
from repro.baselines import run_workload
from repro.baselines.runner import Submission
from repro.core import ServiceLevel
from repro.turbo import TurboConfig

PAPER_PRICES = {
    ServiceLevel.IMMEDIATE: 5.0,
    ServiceLevel.RELAXED: 1.0,
    ServiceLevel.BEST_EFFORT: 0.5,
}


def run_experiment():
    store, catalog = tpch_environment()
    submissions = []
    for index in range(30):
        level = list(ServiceLevel)[index % 3]
        sql = HEAVY_SQL if index % 2 == 0 else MEDIUM_SQL
        submissions.append(
            Submission(
                float(index * 10),
                sql,
                level,
                tenant=f"tenant-{level.value}",
            )
        )
    return run_workload(
        submissions,
        store,
        catalog,
        "tpch",
        TurboConfig.experiment(100.0),
        observe=True,
    )


def test_c1_price_levels(benchmark):
    result = benchmark.pedantic(
        lambda: bench_record("c1", run_experiment, workload_metrics),
        rounds=1, iterations=1,
    )
    lines = [
        format_row("service level", "paper $/TB", "measured $/TB", "ratio vs immediate"),
    ]
    measured = {}
    for level in ServiceLevel:
        measured[level] = result.billed_per_tb(level)
        lines.append(
            format_row(
                level.value,
                f"{PAPER_PRICES[level]:.2f}",
                f"{measured[level]:.4f}",
                f"{measured[level] / measured.get(ServiceLevel.IMMEDIATE, measured[level]):.2f}",
            )
        )
    lines.append("")
    lines.append(
        f"total billed ${result.billed():.4f} across "
        f"{len(result.finished())} finished queries"
    )
    report("C1  Service-level prices ($/TB-scan), paper §3.2", lines)
    # End-to-end billing audit: ledger == profiler == billed price,
    # exact integer nanodollars for every query in the replay.
    export_ledger_audit("c1", result)

    for level in ServiceLevel:
        assert measured[level] == pytest.approx(PAPER_PRICES[level], rel=1e-6)
    assert measured[ServiceLevel.RELAXED] == pytest.approx(
        0.2 * measured[ServiceLevel.IMMEDIATE]
    )
    assert measured[ServiceLevel.BEST_EFFORT] == pytest.approx(
        0.1 * measured[ServiceLevel.IMMEDIATE]
    )
