"""Ablation A1 — lazy vs eager scale-in (paper footnote 2).

The paper avoids "scaling-in right before the next workload spike" with a
lazy-scaling-in policy.  The ablation runs the same periodic-burst
workload under the lazy policy (scale-in cooldown + trailing-window
average, the default) and an eager policy (no cooldown, short window),
and compares scaling thrash and the pending time bursts suffer right
after a scale-in.
"""

import numpy as np
import pytest

from common import HEAVY_SQL, format_row, report, tpch_environment
from repro.baselines import run_workload
from repro.baselines.runner import Submission
from repro.core import ServiceLevel
from repro.turbo import TurboConfig
from repro.turbo.config import VmConfig
from repro.workloads import bursty_arrivals


def make_config(lazy: bool) -> TurboConfig:
    base = TurboConfig.experiment()
    if lazy:
        return base
    eager_vm = VmConfig(
        scale_in_window_s=30.0,  # near-instantaneous average
        scale_in_cooldown_s=0.0,  # no lazy hold
    )
    return TurboConfig(
        vm=eager_vm, cf=base.cf, prices=base.prices,
        grace_period_s=base.grace_period_s,
        scheduler_interval_s=base.scheduler_interval_s,
        data_inflation=base.data_inflation,
    )


def run_policy(lazy: bool):
    store, catalog = tpch_environment()
    rng = np.random.default_rng(12)
    # Burst spacing chosen so the gap between bursts is longer than the
    # eager policy's hold time but shorter than the lazy policy's
    # (window + cooldown): eager releases workers right before the next
    # burst — footnote 2's failure mode — while lazy keeps them.
    arrivals = bursty_arrivals(
        rng, duration_s=5400, base_rate_per_s=0.005,
        burst_rate_per_s=0.5, burst_every_s=600, burst_length_s=120,
    )
    submissions = [
        Submission(t, HEAVY_SQL, ServiceLevel.RELAXED) for t in arrivals
    ]
    return run_workload(submissions, store, catalog, "tpch", make_config(lazy))


def run_experiment():
    return {"lazy": run_policy(True), "eager": run_policy(False)}


def test_a1_lazy_scalein(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    summary = {}
    for name, result in results.items():
        cluster = result.coordinator.vm_cluster
        pending = result.pending_times(ServiceLevel.RELAXED)
        summary[name] = {
            "scale_in": cluster.scale_in_events,
            "scale_out": cluster.scale_out_events,
            "mean_pending": float(np.mean(pending)),
            "p95_pending": float(np.percentile(pending, 95)),
        }
    lines = [
        format_row("policy", "scale-ins", "scale-outs", "mean pend", "p95 pend"),
    ]
    for name, cells in summary.items():
        lines.append(
            format_row(
                name, cells["scale_in"], cells["scale_out"],
                f"{cells['mean_pending']:.1f}s", f"{cells['p95_pending']:.1f}s",
            )
        )
    lines += [
        "",
        "lazy policy = paper default (trailing average + cooldown);",
        "eager policy = scale in the moment concurrency dips (footnote 2's",
        "failure mode: releasing workers right before the next burst).",
    ]
    report("A1  Ablation: lazy vs eager scale-in, paper footnote 2", lines)

    # Eager thrash: more scale-in events and (hence) more re-scale-outs.
    assert summary["eager"]["scale_in"] > summary["lazy"]["scale_in"]
    assert summary["eager"]["scale_out"] >= summary["lazy"]["scale_out"]
    # Thrash hurts latency: bursts land on a freshly shrunk cluster.
    assert summary["eager"]["mean_pending"] > summary["lazy"]["mean_pending"]
    assert summary["eager"]["p95_pending"] >= summary["lazy"]["p95_pending"]
