"""Experiment F3 — Figure 3: the query submission form.

Figure 3 shows the translucent submission form: the query text, a service
level selector (with the per-level price), and a result-size limit.  The
bench renders the form for a translated query and sweeps the full grid of
(service level × result-size limit) submissions, checking that the form's
price quotes match §3.2, that the chosen limit truncates the result, and
that the level chosen on the form controls CF eligibility and billing.
"""

import pytest

from common import format_row, report
from repro import PixelsDB, TurboConfig, UserStore
from repro.core import QueryStatus, ServiceLevel

LIMITS = [1, 5, 1000]


def run_experiment():
    db = PixelsDB(config=TurboConfig.experiment(100.0), seed=9)
    db.load_tpch("tpch", scale=0.05)
    users = UserStore()
    users.register("demo", "demo", {"tpch"})
    rover = db.rover(users, "tpch")
    token = rover.login("demo", "demo")
    rover.select_database(token, "tpch")
    block = rover.ask(token, "Top 10 orders by total price")
    form = rover.submission_form(token, block.block_id)
    outcomes = {}
    for level in ServiceLevel:
        for limit in LIMITS:
            result = rover.submit_query(token, block.block_id, level, limit)
            outcomes[(level, limit)] = result
    db.run_to_completion()
    return form, outcomes


def test_f3_submission_form(benchmark):
    form, outcomes = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    lines = [f"form for query: {form['sql']}", "", "service level selector:"]
    for entry in form["service_levels"]:
        lines.append(
            f"  ( ) {entry['level']:<12} ${entry['price_per_tb']}/TB-scan"
            f"   CF acceleration: {entry['cf_acceleration']}"
        )
    lines.append(f"result-size limit: [{form['default_result_limit']}]")
    lines.append("")
    lines.append(format_row("level", "limit", "rows returned", "price $"))
    for (level, limit), result in outcomes.items():
        query = result.server_query
        lines.append(
            format_row(
                level.value, limit, len(query.result_rows()),
                f"{query.price:.8f}",
            )
        )
    report("F3  Figure 3: submission form (level x result-size limit)", lines)

    quotes = {e["level"]: e["price_per_tb"] for e in form["service_levels"]}
    assert quotes == {"immediate": 5.0, "relaxed": 1.0, "best_effort": 0.5}
    cf_flags = {e["level"]: e["cf_acceleration"] for e in form["service_levels"]}
    assert cf_flags == {
        "immediate": True, "relaxed": False, "best_effort": False,
    }
    for (level, limit), result in outcomes.items():
        query = result.server_query
        assert query.status is QueryStatus.FINISHED
        assert len(query.result_rows()) == min(limit, 10)
    # Same query, same bytes: bills differ only by the level fraction.
    base = outcomes[(ServiceLevel.IMMEDIATE, 1000)].server_query.price
    assert outcomes[(ServiceLevel.RELAXED, 1000)].server_query.price == pytest.approx(
        base * 0.2
    )
    assert outcomes[
        (ServiceLevel.BEST_EFFORT, 1000)
    ].server_query.price == pytest.approx(base * 0.1)
