"""Experiment C5 — service-level pending-time semantics (paper §3.2).

Paper claims, per level:
* Immediate: "guarantees immediate execution" — zero pending time even
  under overload.
* Relaxed: queued in the query server "before a configurable grace
  period (e.g., 5 minutes) expires" — server hold is bounded by the
  grace period.
* Best-of-effort: "no guarantee on the pending time"; executed only when
  concurrency is below the low watermark.
* "Even for a relaxed or best-of-effort query, it may be executed
  immediately if the VM cluster is available" (last ¶ of §3.2).

The bench submits the same query mix at all three levels through an
overload spike and measures pending-time distributions, plus the
idle-cluster fast path.
"""

import dataclasses
import os

import numpy as np
import pytest

from common import (
    export_ledger_audit,
    HEAVY_SQL,
    bench_record,
    format_row,
    report,
    tpch_environment,
    workload_metrics,
    workload_profile,
    write_observability_artifacts,
)
from repro.baselines import run_workload
from repro.baselines.runner import Submission
from repro.core import ServiceLevel
from repro.turbo import TurboConfig

#: Committed ceiling on the bill estimator's mean absolute percentage
#: error over this bench's 47 queries.  The workload repeats one
#: statement, so priors converge fast and the blend should land almost
#: exactly — a MAPE above this means the estimator (or its statement-
#: stats priors) regressed.
PROJECTION_MAPE_THRESHOLD = 0.05


def run_experiment():
    store, catalog = tpch_environment()
    # The paper's grace period is configurable ("e.g., 5 minutes"); this
    # bench tightens it to 60s so the overload spike provably holds some
    # relaxed queries past their deadline — exercising both the forced
    # grace-expiry dispatch AND the journal's tail-based capture of the
    # resulting deadline violations.
    config = dataclasses.replace(TurboConfig.experiment(), grace_period_s=60.0)
    submissions = []
    # Idle-cluster probes first (§3.2 last paragraph); spaced out so
    # each truly sees an idle cluster.
    submissions.append(Submission(1.0, HEAVY_SQL, ServiceLevel.RELAXED))
    submissions.append(Submission(150.0, HEAVY_SQL, ServiceLevel.BEST_EFFORT))
    # Then a spike of 45 queries in ~3 seconds, levels interleaved.
    for index in range(45):
        level = list(ServiceLevel)[index % 3]
        submissions.append(Submission(300.0 + index * 0.07, HEAVY_SQL, level))
    result = run_workload(
        submissions, store, catalog, "tpch", config, observe=True
    )
    return config, result


def c5_metrics(pair):
    """The standard workload metrics plus the estimator's accuracy —
    baselining the MAPE makes estimator drift a perf-gate failure."""
    result = pair[1]
    metrics = workload_metrics(result)
    projection = result.obs.activity.projection_report()
    metrics["projection_queries"] = projection["queries"]
    metrics["projection_mape"] = projection["mape"]
    return metrics


def test_c5_pending_time(benchmark):
    config, result = benchmark.pedantic(
        lambda: bench_record(
            "c5", run_experiment, c5_metrics,
            profile=lambda pair: workload_profile(pair[1]),
        ),
        rounds=1, iterations=1,
    )

    idle_relaxed, idle_best = result.queries[0], result.queries[1]
    spike = result.queries[2:]

    def stats(level):
        pending = [
            q.pending_time_s for q in spike
            if q.level is level and q.pending_time_s is not None
        ]
        return np.mean(pending), np.max(pending)

    # Server-side hold (submission -> dispatch) for relaxed queries.
    relaxed_holds = [
        q.dispatched_at - q.submitted_at
        for q in spike
        if q.level is ServiceLevel.RELAXED and q.dispatched_at is not None
    ]
    lines = [
        format_row("level", "paper bound", "mean pend", "max pend"),
    ]
    bounds = {
        ServiceLevel.IMMEDIATE: "0 (immediate)",
        ServiceLevel.RELAXED: f"server hold <= {config.grace_period_s:.0f}s",
        ServiceLevel.BEST_EFFORT: "unbounded",
    }
    for level in ServiceLevel:
        mean_pending, max_pending = stats(level)
        lines.append(
            format_row(
                level.value, bounds[level],
                f"{mean_pending:.1f}s", f"{max_pending:.1f}s",
            )
        )
    lines += [
        "",
        f"max relaxed server hold: {max(relaxed_holds):.1f}s "
        f"(grace period {config.grace_period_s:.0f}s)",
        f"idle-cluster relaxed pending    : {idle_relaxed.pending_time_s:.1f}s",
        f"idle-cluster best-effort pending: {idle_best.pending_time_s:.1f}s",
    ]
    slo = result.obs.slo.snapshot()["levels"]
    lines += ["", "SLO compliance (pending-time deadlines):"]
    for name in ("immediate", "relaxed", "best_effort"):
        level = slo.get(name, {})
        compliance = level.get("compliance")
        rendered = "-" if compliance is None else f"{100 * compliance:.1f}%"
        lines.append(
            f"  {name:<12} queries={level.get('queries', 0):>3} "
            f"violations={level.get('violations', 0):>3} "
            f"compliance={rendered}"
        )
    export_ledger_audit("c5", result)
    paths = write_observability_artifacts(
        "c5", result, "C5 pending-time semantics"
    )
    captures = result.obs.journal.captures()
    violating = [
        c for c in captures if "deadline_violation" in c["reasons"]
    ]
    projection = result.obs.activity.projection_report()
    lines += [
        "",
        f"journal captures: {len(captures)} "
        f"({len(violating)} deadline violations)",
        f"bill estimator: {projection['queries']} queries, "
        f"MAPE {projection['mape']:.9f} "
        f"(gate <= {PROJECTION_MAPE_THRESHOLD}), "
        f"sources {projection['by_source']}",
        f"observability artifacts: {sorted(paths)}",
    ]
    report("C5  Pending-time semantics of the three levels, paper §3.2", lines)

    immediate_mean, immediate_max = stats(ServiceLevel.IMMEDIATE)
    relaxed_mean, _ = stats(ServiceLevel.RELAXED)
    best_mean, _ = stats(ServiceLevel.BEST_EFFORT)
    assert immediate_max == 0.0  # §3.2(1): guaranteed immediate execution
    assert max(relaxed_holds) <= config.grace_period_s + config.scheduler_interval_s
    # The levels order as urgency tiers under overload.
    assert immediate_mean < relaxed_mean < best_mean
    # §3.2 last ¶: idle cluster → cheap levels still start (almost) at once.
    assert idle_relaxed.pending_time_s == 0.0
    assert idle_best.pending_time_s <= 1.0
    assert all(q.status.value == "finished" for q in result.queries)
    # SLO view agrees: immediate's zero-pending deadline never violates.
    assert slo["immediate"]["compliance"] == 1.0
    assert slo["immediate"]["violations"] == 0
    # Tail-based capture: every deadline-violating relaxed query arrives
    # in the journal with its full diagnosis attached — the profiler's
    # attribution tree and the time flame graph.
    assert slo["relaxed"]["violations"] > 0
    assert len(violating) == slo["relaxed"]["violations"]
    # Every finished query got an estimated-vs-actual accuracy record,
    # and the estimator's MAPE holds under the committed ceiling.
    assert projection["queries"] == len(result.queries)
    assert projection["mape"] <= PROJECTION_MAPE_THRESHOLD
    for capture in violating:
        assert capture["level"] == "relaxed"
        assert capture["profile"]["children"]  # attribution tree attached
        assert capture["flamegraph_svg"].startswith("<svg")
    # Persist one captured flame graph as a CI artifact.
    flame_path = os.path.join(
        os.path.dirname(__file__), "results", "c5_capture_flame.svg"
    )
    with open(flame_path, "w", encoding="utf-8") as handle:
        handle.write(violating[0]["flamegraph_svg"])
