"""Experiment F1 — Figure 1: the end-to-end architecture trace.

Figure 1 shows the full component graph: Pixels-Rover (browser UI +
backend) → text-to-SQL service and Query Server → Coordinator → VM
cluster / CF service → object storage.  The bench drives one query per
service level through *every* numbered component and verifies each hop
actually happened: the schema came from the catalog, the SQL from the
translation service, scheduling from the query server, execution from
VM or CF workers, and bytes from the object store.
"""

import pytest

from common import format_row, report, tpch_environment
from repro import PixelsDB, ServiceLevel, TurboConfig, UserStore
from repro.core import QueryStatus
from repro.turbo.coordinator import ExecutionVenue


def run_experiment():
    db = PixelsDB(config=TurboConfig.experiment(), seed=5)
    db.load_tpch("tpch", scale=0.1)
    users = UserStore()
    users.register("demo", "demo", {"tpch"})
    rover = db.rover(users, "tpch")

    token = rover.login("demo", "demo")  # (1) Rover: authentication
    tree = rover.schema_tree(token, "tpch")  # (1) Rover: schema browser
    rover.select_database(token, "tpch")
    block = rover.ask(  # (3) CodeS: text-to-SQL over the JSON protocol
        token, "What is the total price per order status?"
    )
    results = {}
    # Saturate the VM cluster so the immediate query provably exercises CF.
    for _ in range(4):
        db.submit("tpch", block.sql, ServiceLevel.RELAXED)
    for level in ServiceLevel:  # (2) Turbo: query server + coordinator
        results[level] = rover.submit_query(token, block.block_id, level)
    db.run_to_completion()
    store_metrics = db.store.metrics
    coordinator = db.coordinator("tpch")
    return db, rover, token, tree, block, results, store_metrics, coordinator


def test_f1_architecture(benchmark):
    (db, rover, token, tree, block, results, store_metrics, coordinator) = (
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    )

    venues = {level: r.server_query.execution.venue for level, r in results.items()}
    lines = [
        "component hops exercised (Figure 1):",
        f"  Pixels-Rover backend : login + schema browser "
        f"({len(tree['tables'])} tables) + translator + submission form",
        f"  text-to-SQL (CodeS)  : {block.question!r}",
        f"                         -> {block.sql}",
        "  Query Server         : 3 service levels submitted "
        f"(prices {[rover._query_server.price_quote(l) for l in ServiceLevel]})",
        f"  Coordinator          : {len(coordinator.executions)} queries tracked",
        f"  VM cluster           : {coordinator.vm_cluster.num_workers} workers, "
        f"{coordinator.vm_cluster.total_worker_seconds():.0f} worker-seconds",
        f"  CF service           : {len(coordinator.cf_service.invocations)} "
        "invocations",
        f"  Object storage       : {store_metrics.get_requests} GETs, "
        f"{store_metrics.bytes_read / 1e6:.1f} MB read",
        "",
        format_row("level", "venue", "status", "price $"),
    ]
    for level, result in results.items():
        query = result.server_query
        lines.append(
            format_row(
                level.value, venues[level].value, query.status.value,
                f"{query.price:.8f}",
            )
        )
    report("F1  Figure 1: end-to-end architecture trace", lines)

    # Every component did real work.
    assert len(tree["tables"]) == 8
    assert block.sql.startswith("SELECT")
    assert all(
        r.server_query.status is QueryStatus.FINISHED for r in results.values()
    )
    assert venues[ServiceLevel.IMMEDIATE] is ExecutionVenue.CF  # saturated
    assert venues[ServiceLevel.RELAXED] is ExecutionVenue.VM
    assert venues[ServiceLevel.BEST_EFFORT] is ExecutionVenue.VM
    assert store_metrics.bytes_read > 0
    assert coordinator.cf_service.invocations
    # All three produced the same rows — transparency across venues.
    rows = {
        level: tuple(sorted(r.server_query.result_rows()))
        for level, r in results.items()
    }
    assert len(set(rows.values())) == 1
