"""The CI billing-reconciliation gate: replay every exported ledger.

The observed benches (C1, C2, C4, C5, and every C8 sweep cell) export
their metering ledgers to ``benchmarks/results/*_ledger.jsonl`` via
:func:`common.export_ledger_audit`.  This script replays each one
standalone through :mod:`repro.obs.reconcile` and fails on any named
invariant violation — proving, from the artifacts alone, that every
query's ledger events sum to the billed price and to the $/TB
logical-bytes basis in exact integer nanodollars.

It then runs a **seeded negative test**: it takes one real ledger,
tampers with a single charge event (one nanodollar added to a bandwidth
charge), and requires the reconciler to detect the corruption and name
the violated invariant (``ledger.charge_sums_to_bill``).  A gate that
cannot catch a corrupted ledger is not a gate; CI fails if the
corruption slips through.

Exit status: 0 when every ledger reconciles and the corruption is
caught; non-zero otherwise.

Usage::

    PYTHONPATH=src python benchmarks/reconcile_gate.py
"""

from __future__ import annotations

import glob
import os
import sys

_RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)

#: Ledgers the gate insists on (beyond replaying whatever is present).
#: C9 is the fleet-scheduling bench: its ledger proves that rejected
#: queries billed $0 (they emit no events at all) and that downgraded
#: queries' best-effort charges reconcile exactly.
_REQUIRED_LEDGERS = ("c9_ledger.jsonl",)


def _replay_all() -> int:
    from repro.obs.ledger import load_events_jsonl
    from repro.obs.reconcile import reconcile_events

    paths = sorted(glob.glob(os.path.join(_RESULTS_DIR, "*_ledger.jsonl")))
    if not paths:
        print(
            "RECONCILE GATE: no *_ledger.jsonl artifacts under "
            f"{_RESULTS_DIR} — run the observed benches first",
            file=sys.stderr,
        )
        return 2
    present = {os.path.basename(p) for p in paths}
    missing = [name for name in _REQUIRED_LEDGERS if name not in present]
    if missing:
        print(
            f"RECONCILE GATE: required ledger export(s) missing: {missing} "
            "— run the fleet-scheduling bench first",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            events = load_events_jsonl(handle.read())
        report = reconcile_events(events)
        print(f"{os.path.basename(path)}: {report.render()}")
        if not report.ok:
            failures += 1
    return 1 if failures else 0


def _negative_test() -> int:
    """Corrupt one real ledger; the reconciler must name the drift."""
    import dataclasses

    from repro.obs.ledger import load_events_jsonl
    from repro.obs.reconcile import reconcile_events

    paths = sorted(glob.glob(os.path.join(_RESULTS_DIR, "*_ledger.jsonl")))
    events = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            events = load_events_jsonl(handle.read())
        if any(
            e.kind == "charge" and e.account == "user" and e.axis == "bandwidth"
            for e in events
        ):
            break
    target = next(
        (
            i
            for i, e in enumerate(events)
            if e.kind == "charge"
            and e.account == "user"
            and e.axis == "bandwidth"
        ),
        None,
    )
    if target is None:
        print(
            "RECONCILE GATE: no user bandwidth charge found to corrupt",
            file=sys.stderr,
        )
        return 2
    tampered = list(events)
    tampered[target] = dataclasses.replace(
        tampered[target],
        nanodollars=tampered[target].nanodollars + 1,
    )
    report = reconcile_events(tampered)
    named = {v.invariant for v in report.violations}
    if "ledger.charge_sums_to_bill" in named:
        print(
            "negative test: corrupted ledger detected "
            f"({sorted(named)}) — gate is live"
        )
        return 0
    print(
        "RECONCILE GATE: seeded 1-nanodollar corruption was NOT detected "
        f"(violations: {sorted(named)})",
        file=sys.stderr,
    )
    return 1


def main() -> int:
    replay = _replay_all()
    if replay:
        return replay
    return _negative_test()


if __name__ == "__main__":
    raise SystemExit(main())
