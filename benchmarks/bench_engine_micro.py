"""Engine micro-benchmarks (supporting measurements, not a paper figure).

Wall-clock timings of the substrate components, so regressions in the
engine/format/NL2SQL layers are visible: SQL parsing, planning+optimizing,
vectorized execution of TPC-H-style queries, columnar write/read through
the object store, and single-turn NL translation.
"""

import pytest

from common import tpch_environment
from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.engine.sql.parser import parse_sql
from repro.nl2sql import RuleBasedTranslator
from repro.storage.table import TableReader, TableWriter
from repro.workloads import TPCH_QUERIES, TpchGenerator

Q1 = TPCH_QUERIES["q1_pricing_summary"]
Q3 = TPCH_QUERIES["q3_shipping_priority"]


@pytest.fixture(scope="module")
def runtime():
    store, catalog = tpch_environment()
    planner = Planner(catalog, "tpch")
    optimizer = Optimizer()
    executor = QueryExecutor(ObjectStoreSource(store))
    return store, catalog, planner, optimizer, executor


def test_parse_q1(benchmark):
    statement = benchmark(parse_sql, Q1)
    assert statement.group_by


def test_plan_and_optimize_q3(benchmark, runtime):
    _, _, planner, optimizer, _ = runtime

    def plan():
        return optimizer.optimize(planner.plan_sql(Q3))

    plan_tree = benchmark(plan)
    assert plan_tree.output_schema()


def test_execute_q1(benchmark, runtime):
    _, _, planner, optimizer, executor = runtime
    plan = optimizer.optimize(planner.plan_sql(Q1))
    result = benchmark(executor.execute, plan)
    assert result.num_rows == 6


def test_execute_q3_join(benchmark, runtime):
    _, _, planner, optimizer, executor = runtime
    plan = optimizer.optimize(planner.plan_sql(Q3))
    result = benchmark(executor.execute, plan)
    assert result.num_rows == 10


def test_columnar_write(benchmark):
    table = TpchGenerator(scale=0.05).tables()[-1].data  # lineitem

    def write():
        from repro.storage.object_store import ObjectStore

        store = ObjectStore()
        store.create_bucket("b")
        TableWriter(store, "b", "t").write(table)
        return store

    store = benchmark(write)
    assert store.total_bytes("b", "t/") > 0


def test_columnar_scan(benchmark, runtime):
    store, catalog, _, _, _ = runtime
    table = catalog.table("tpch", "lineitem")
    reader = TableReader(store, table.bucket, table.prefix)
    result = benchmark(
        reader.scan, ["l_extendedprice", "l_discount"],
    )
    assert result.data.num_rows == table.row_count


def test_nl_translation(benchmark, runtime):
    _, catalog, _, _, _ = runtime
    translator = RuleBasedTranslator()
    schema = catalog.schema("tpch")
    translation = benchmark(
        translator.translate, schema, "what is the total price per order status"
    )
    assert "GROUP BY" in translation.sql
