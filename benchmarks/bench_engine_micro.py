"""Engine micro-benchmarks (supporting measurements, not a paper figure).

Wall-clock timings of the substrate components, so regressions in the
engine/format/NL2SQL layers are visible: SQL parsing, planning+optimizing,
vectorized execution of TPC-H-style queries, columnar write/read through
the object store, and single-turn NL translation.
"""

import json
from pathlib import Path

import pytest

from common import bench_record, tpch_environment
from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.engine.sql.parser import parse_sql
from repro.nl2sql import RuleBasedTranslator
from repro.storage.cache import BufferPool
from repro.storage.catalog import Catalog, ColumnMeta
from repro.storage.file_format import PixelsReader
from repro.storage.table import TableReader, TableWriter
from repro.workloads import TPCH_QUERIES, TpchGenerator

Q1 = TPCH_QUERIES["q1_pricing_summary"]
Q3 = TPCH_QUERIES["q3_shipping_priority"]


@pytest.fixture(scope="module")
def runtime():
    store, catalog = tpch_environment()
    planner = Planner(catalog, "tpch")
    optimizer = Optimizer()
    executor = QueryExecutor(ObjectStoreSource(store))
    return store, catalog, planner, optimizer, executor


def test_parse_q1(benchmark):
    statement = benchmark(parse_sql, Q1)
    assert statement.group_by


def test_plan_and_optimize_q3(benchmark, runtime):
    _, _, planner, optimizer, _ = runtime

    def plan():
        return optimizer.optimize(planner.plan_sql(Q3))

    plan_tree = benchmark(plan)
    assert plan_tree.output_schema()


def test_execute_q1(benchmark, runtime):
    _, _, planner, optimizer, executor = runtime
    plan = optimizer.optimize(planner.plan_sql(Q1))
    result = benchmark(executor.execute, plan)
    assert result.num_rows == 6


def test_execute_q3_join(benchmark, runtime):
    _, _, planner, optimizer, executor = runtime
    plan = optimizer.optimize(planner.plan_sql(Q3))
    result = benchmark(executor.execute, plan)
    assert result.num_rows == 10


def test_columnar_write(benchmark):
    table = TpchGenerator(scale=0.05).tables()[-1].data  # lineitem

    def write():
        from repro.storage.object_store import ObjectStore

        store = ObjectStore()
        store.create_bucket("b")
        TableWriter(store, "b", "t").write(table)
        return store

    store = benchmark(write)
    assert store.total_bytes("b", "t/") > 0


def test_columnar_scan(benchmark, runtime):
    store, catalog, _, _, _ = runtime
    table = catalog.table("tpch", "lineitem")
    reader = TableReader(store, table.bucket, table.prefix)
    result = benchmark(
        reader.scan, ["l_extendedprice", "l_discount"],
    )
    assert result.data.num_rows == table.row_count


@pytest.fixture(scope="module")
def chunked_lineitem():
    """Lineitem written across many files/row groups on a private store,
    so GET-count effects are visible (the shared cached environment packs
    the table into a single file)."""
    from repro.storage.object_store import ObjectStore

    store = ObjectStore()
    store.create_bucket("bench")
    data = TpchGenerator(scale=0.05).tables()[-1].data  # lineitem
    TableWriter(
        store, "bench", "lineitem", rows_per_file=1024, rows_per_group=256
    ).write(data)
    return store, data


def test_columnar_scan_cold_vs_warm(benchmark, chunked_lineitem):
    """Warm buffer-pool scans of lineitem vs the cold first scan.

    The assertion is the read-path headline: a warm scan issues at least
    5x fewer object-store GETs than the cold scan that filled the pool,
    while billed bytes stay identical (logical billing basis).
    """
    store, data = chunked_lineitem
    pool = BufferPool(store)
    reader = TableReader(store, "bench", "lineitem", cache=pool)
    cold = reader.scan(["l_extendedprice", "l_discount"])

    warm = benchmark(reader.scan, ["l_extendedprice", "l_discount"])
    assert warm.data.num_rows == data.num_rows
    assert cold.get_requests >= 5 * max(warm.get_requests, 1)
    assert warm.bytes_scanned == cold.bytes_scanned
    assert warm.cache_hits > 0


def test_repeated_footer_open(benchmark, chunked_lineitem):
    """Re-opening every lineitem file with a shared footer cache.

    After the first pass the footer cache makes re-opens metadata-only:
    zero GETs instead of two ranged GETs per file."""
    store, data = chunked_lineitem
    pool = BufferPool(store)
    keys = TableReader(store, "bench", "lineitem").file_keys()
    for key in keys:  # fill the footer cache once
        PixelsReader(store, "bench", key, cache=pool).footer

    def reopen_all():
        total = 0
        for key in keys:
            total += PixelsReader(store, "bench", key, cache=pool).num_rows
        return total

    before = store.metrics.snapshot()
    total = benchmark(reopen_all)
    delta = store.metrics.delta(before)
    assert total == data.num_rows
    assert delta.get_requests == 0  # every footer served from the pool
    assert delta.footer_cache_hits >= len(keys)


def test_limit_early_exit_vs_full_scan(benchmark, chunked_lineitem):
    """LIMIT early-exit through the pipeline executor vs the full scan.

    The pull-based pipeline stops fetching row groups once the limit is
    satisfied, so the limited query must issue strictly fewer storage
    GETs and scan (and bill) strictly fewer bytes than the full scan of
    the same projection.  The before/after comparison is written to
    ``results/limit_early_exit.json`` for the CI artifact.
    """
    store, data = chunked_lineitem
    catalog = Catalog()
    catalog.create_schema("bench")
    catalog.create_table(
        "bench",
        "lineitem",
        [ColumnMeta(name, dtype) for name, dtype in data.schema()],
        bucket="bench",
        prefix="lineitem",
    )
    planner = Planner(catalog, "bench")
    optimizer = Optimizer()
    executor = QueryExecutor(ObjectStoreSource(store))
    full = executor.execute(
        optimizer.optimize(planner.plan_sql("SELECT l_orderkey FROM lineitem"))
    )

    def run_limited():
        return executor.execute(
            optimizer.optimize(
                planner.plan_sql("SELECT l_orderkey FROM lineitem LIMIT 100")
            )
        )

    limited = benchmark(run_limited)
    assert limited.num_rows == 100
    assert limited.stats.get_requests < full.stats.get_requests
    assert limited.stats.bytes_scanned < full.stats.bytes_scanned

    def snapshot(result):
        return {
            "bytes_scanned": result.stats.bytes_scanned,
            "get_requests": result.stats.get_requests,
            "rows_scanned": result.stats.rows_scanned,
            "rows_produced": result.stats.rows_produced,
        }

    payload = {
        "table_rows": data.num_rows,
        "full_scan": snapshot(full),
        "limit_early_exit": snapshot(limited),
        "savings": {
            "bytes_saved": full.stats.bytes_scanned - limited.stats.bytes_scanned,
            "gets_saved": full.stats.get_requests - limited.stats.get_requests,
            "bytes_fraction_scanned": limited.stats.bytes_scanned
            / full.stats.bytes_scanned,
        },
    }
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "limit_early_exit.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )


def test_engine_micro_trajectory(benchmark, runtime, chunked_lineitem):
    """Record the engine's deterministic micro-metrics as a perf-gate
    baseline (``BENCH_engine_micro.json``).

    Everything recorded is an exact engine output — result cardinalities,
    per-query logical bytes/GETs, LIMIT early-exit savings, warm-scan
    cache behavior — so the gate can demand exact matches.  Wall times
    stay in the regular pytest-benchmark tests above.
    """
    _, _, planner, optimizer, executor = runtime
    chunked_store, data = chunked_lineitem

    def run_micro():
        q1 = executor.execute(optimizer.optimize(planner.plan_sql(Q1)))
        q3 = executor.execute(optimizer.optimize(planner.plan_sql(Q3)))
        catalog = Catalog()
        catalog.create_schema("bench")
        catalog.create_table(
            "bench",
            "lineitem",
            [ColumnMeta(name, dtype) for name, dtype in data.schema()],
            bucket="bench",
            prefix="lineitem",
        )
        chunked_planner = Planner(catalog, "bench")
        chunked_executor = QueryExecutor(ObjectStoreSource(chunked_store))
        full = chunked_executor.execute(
            optimizer.optimize(
                chunked_planner.plan_sql("SELECT l_orderkey FROM lineitem")
            )
        )
        limited = chunked_executor.execute(
            optimizer.optimize(
                chunked_planner.plan_sql(
                    "SELECT l_orderkey FROM lineitem LIMIT 100"
                )
            )
        )
        pool = BufferPool(chunked_store)
        reader = TableReader(chunked_store, "bench", "lineitem", cache=pool)
        cold = reader.scan(["l_extendedprice", "l_discount"])
        warm = reader.scan(["l_extendedprice", "l_discount"])
        return {
            "q1_rows": q1.num_rows,
            "q1_bytes_scanned": q1.stats.bytes_scanned,
            "q1_get_requests": q1.stats.get_requests,
            "q3_rows": q3.num_rows,
            "q3_bytes_scanned": q3.stats.bytes_scanned,
            "q3_get_requests": q3.stats.get_requests,
            "full_scan_bytes": full.stats.bytes_scanned,
            "full_scan_gets": full.stats.get_requests,
            "limit100_bytes": limited.stats.bytes_scanned,
            "limit100_gets": limited.stats.get_requests,
            "cold_scan_gets": cold.get_requests,
            "warm_scan_gets": warm.get_requests,
            "warm_scan_cache_hits": warm.cache_hits,
        }

    metrics = benchmark.pedantic(
        lambda: bench_record("engine_micro", run_micro, lambda m: m),
        rounds=1, iterations=1,
    )
    assert metrics["q1_rows"] == 6
    assert metrics["limit100_gets"] < metrics["full_scan_gets"]
    assert metrics["warm_scan_cache_hits"] > 0


def test_nl_translation(benchmark, runtime):
    _, catalog, _, _, _ = runtime
    translator = RuleBasedTranslator()
    schema = catalog.schema("tpch")
    translation = benchmark(
        translator.translate, schema, "what is the total price per order status"
    )
    assert "GROUP BY" in translation.sql
