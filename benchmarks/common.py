"""Shared infrastructure for the experiment benches.

Each bench file regenerates one row of DESIGN.md's per-experiment index:
it runs the experiment on the simulated stack, prints a paper-vs-measured
table through ``report()`` (visible in ``bench_output.txt``), and asserts
the claim's qualitative shape so the harness is self-checking.

Datasets are generated once per scale and cached for the whole pytest
session — loading dominates bench start-up otherwise.
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.workloads import LogsGenerator, TpchGenerator, load_dataset

_DATASET_CACHE: dict[tuple, tuple[ObjectStore, Catalog]] = {}

HEAVY_SQL = (
    "SELECT l_returnflag, l_linestatus, sum(l_extendedprice) AS revenue, "
    "count(*) AS n FROM lineitem GROUP BY l_returnflag, l_linestatus"
)
MEDIUM_SQL = (
    "SELECT o_orderstatus, count(*) AS n, sum(o_totalprice) AS total "
    "FROM orders GROUP BY o_orderstatus"
)
LIGHT_SQL = "SELECT count(*) FROM customer"


def tpch_environment(scale: float = 0.2, seed: int = 42):
    """(store, catalog) with a TPC-H dataset loaded — cached per scale."""
    key = ("tpch", scale, seed)
    if key not in _DATASET_CACHE:
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale, seed).tables())
        _DATASET_CACHE[key] = (store, catalog)
    return _DATASET_CACHE[key]


def logs_environment(num_rows: int = 5000, seed: int = 7):
    """(store, catalog) with the web-log dataset loaded — cached."""
    key = ("logs", num_rows, seed)
    if key not in _DATASET_CACHE:
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(
            store, catalog, "weblogs", [LogsGenerator(num_rows, seed).table()]
        )
        _DATASET_CACHE[key] = (store, catalog)
    return _DATASET_CACHE[key]


def write_observability_artifacts(slug: str, result, title: str) -> dict[str, str]:
    """Persist an observed replay's exports under ``benchmarks/results/``.

    Writes the time-series JSONL, alert transition log, autoscaler audit
    log, SLO record dump, the rendered dashboard HTML, the statement
    stats, the query journal, the activity snapshot, and the estimator's
    projection-accuracy record — all deterministic, so re-runs diff
    cleanly.  Returns {kind: path}.  Requires
    ``run_workload(observe=True)``.
    """
    from repro.obs.dashboard import render_dashboard_html

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    data = result.dashboard_data(title)  # takes the final scrape
    artifacts = {
        "timeseries": (f"{slug}_timeseries.jsonl", result.timeseries.export_jsonl()),
        "alerts": (f"{slug}_alerts.jsonl", result.alerts.export_jsonl()),
        "audit": (
            f"{slug}_audit.jsonl",
            result.coordinator.vm_cluster.export_audit_jsonl(),
        ),
        "slo": (f"{slug}_slo.json", result.obs.slo.export_json() + "\n"),
        "dashboard": (f"{slug}_dashboard.html", render_dashboard_html(data)),
        "statements": (
            f"{slug}_statements.json", result.obs.statements.export_json()
        ),
        "statements_top": (
            f"{slug}_statements_top.txt",
            result.obs.statements.render_top(10, "dollars"),
        ),
        "journal": (f"{slug}_journal.jsonl", result.obs.journal.export_jsonl()),
        "activity": (
            f"{slug}_activity.json", result.obs.activity.export_json()
        ),
        "projections": (
            f"{slug}_projections.json",
            result.obs.activity.export_projection_json(),
        ),
    }
    paths: dict[str, str] = {}
    for kind, (filename, payload) in artifacts.items():
        path = os.path.join(results_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        paths[kind] = path
    return paths


def export_ledger_audit(slug: str, result) -> dict[str, str]:
    """Reconcile an observed replay's metering ledger and persist the
    billing-audit artifacts under ``benchmarks/results/``.

    Asserts the reconciler's end-to-end proof (ledger sum == profiler
    attribution == billed price == $/TB bytes basis, exact integer
    nanodollars) for every query in the replay, then writes the ledger
    JSONL, the spend report, and the reconciliation report — the files
    ``reconcile_gate.py`` replays in CI.  Requires
    ``run_workload(observe=True)``.  Returns {kind: path}.
    """
    from repro.obs.reconcile import reconcile_server

    if result.obs is None:
        raise ValueError("run the workload with observe=True first")
    report = reconcile_server(result.server)
    assert report.ok, f"billing reconciliation failed:\n{report.render()}"
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    artifacts = {
        "ledger": (f"{slug}_ledger.jsonl", result.obs.ledger.export_jsonl()),
        "spend": (f"{slug}_spend.json", result.obs.spend.export_json()),
        "reconciliation": (
            f"{slug}_reconciliation.json", report.export_json()
        ),
    }
    paths: dict[str, str] = {}
    for kind, (filename, payload) in artifacts.items():
        path = os.path.join(results_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        paths[kind] = path
    return paths


def workload_profile(result) -> dict:
    """Per-operator resource totals over a whole observed replay.

    Folds every finished query's cost/time attribution profile into one
    ``{"operators": {name: {time_s, nanodollars, bytes_scanned,
    get_requests}}}`` table — the optional ``"profile"`` section of a
    bench record, which ``perf_gate.py --explain`` diffs to name the
    operator and resource behind a failed baseline comparison.  Self
    values only, so totals sum exactly to the workload's virtual time
    and billed nanodollars.  Requires ``run_workload(observe=True)``.
    """
    operators: dict[str, dict] = {}

    def visit(node) -> None:
        row = operators.setdefault(
            node.name,
            {
                "time_s": 0.0,
                "nanodollars": 0,
                "bytes_scanned": 0,
                "get_requests": 0,
            },
        )
        row["time_s"] += node.self_time_s
        row["nanodollars"] += node.self_nanodollars
        row["bytes_scanned"] += node.bytes_scanned
        row["get_requests"] += node.get_requests
        for child in node.children:
            visit(child)

    for query in result.finished():
        visit(result.server.query_profile(query.query_id).root)
    for row in operators.values():
        row["time_s"] = round(row["time_s"], 9)
    return {"operators": {name: operators[name] for name in sorted(operators)}}


# -- benchmark trajectory (BENCH_<slug>.json + perf gate) -----------------------

#: Bumped when the record layout changes; the gate refuses cross-version
#: comparisons instead of mis-reading old baselines.
BENCH_SCHEMA_VERSION = 1

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def baseline_path(slug: str) -> str:
    """The committed baseline for ``slug`` (repo root, tracked by git)."""
    return os.path.join(_REPO_ROOT, f"BENCH_{slug}.json")


def fresh_path(slug: str) -> str:
    """The fresh-run record for ``slug`` (results dir, gitignored)."""
    return os.path.join(_RESULTS_DIR, f"bench_{slug}.json")


def workload_metrics(result) -> dict:
    """The deterministic metric set every workload bench records.

    All five are exact simulation outputs — identical across runs and
    machines for the same seed — which is what lets the perf gate demand
    exact matches.  Bytes/GETs come from per-query :class:`QueryStats`
    (not the store's global counters) so the numbers are independent of
    test execution order against the session-cached dataset.
    """
    finished = result.finished()
    stats = [
        q.execution.result.stats
        for q in finished
        if q.execution is not None and q.execution.result is not None
    ]
    return {
        "finished_queries": len(finished),
        "billed_dollars": round(result.billed(), 12),
        "logical_bytes_scanned": sum(s.bytes_scanned for s in stats),
        "get_requests": sum(s.get_requests for s in stats),
        "sim_seconds": round(result.sim.now, 9),
    }


def bench_record(slug: str, run, metrics, *, rounds: int = 2, warmup: int = 0,
                 meta: dict | None = None, profile=None):
    """Run ``run()`` ``warmup + rounds`` times and record the trajectory.

    ``metrics(result)`` must return the bench's *deterministic* metric
    dict; it is computed every round and asserted identical across rounds
    (a built-in determinism self-check — a bench whose simulated numbers
    wobble cannot seed a baseline).  Wall time gets robust stats instead:
    median and MAD over the measured rounds.

    ``profile(result)``, when given, computes the optional per-operator
    resource table (see :func:`workload_profile`) from the last round's
    result.  It lands in the record's top-level ``"profile"`` key, which
    the gate's metric comparison ignores — old baselines without one
    stay valid — and ``perf_gate.py --explain`` diffs for root-causing.

    The record is always written to ``benchmarks/results/bench_<slug>.json``
    (gitignored; the perf gate's "fresh" side).  With ``BENCH_UPDATE=1``
    in the environment it is also written to the committed baseline
    ``BENCH_<slug>.json`` at the repo root — the refresh flow after an
    intentional perf change.  Returns the last round's result object.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    for _ in range(warmup):
        run()
    wall_samples: list[float] = []
    reference: dict | None = None
    result = None
    for round_index in range(rounds):
        started = time.perf_counter()
        result = run()
        wall_samples.append(time.perf_counter() - started)
        observed = metrics(result)
        if reference is None:
            reference = observed
        elif observed != reference:
            raise AssertionError(
                f"bench {slug!r} is not deterministic: round 0 metrics "
                f"{reference} != round {round_index} metrics {observed}"
            )
    median = statistics.median(wall_samples)
    mad = statistics.median(abs(s - median) for s in wall_samples)
    record = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "slug": slug,
        "rounds": rounds,
        "warmup": warmup,
        "metrics": reference,
        "wall": {
            "median_s": round(median, 6),
            "mad_s": round(mad, 6),
            "samples_s": [round(s, 6) for s in wall_samples],
        },
    }
    if meta:
        record["meta"] = meta
    if profile is not None:
        record["profile"] = profile(result)
    payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    with open(fresh_path(slug), "w", encoding="utf-8") as handle:
        handle.write(payload)
    if os.environ.get("BENCH_UPDATE"):
        with open(baseline_path(slug), "w", encoding="utf-8") as handle:
            handle.write(payload)
    return result


REPORTS: list[tuple[str, list[str]]] = []


def report(title: str, lines: list[str]) -> None:
    """Record an experiment table.

    Tables are (a) queued for the end-of-session terminal summary (the
    benchmarks' conftest flushes them after pytest's capture ends, so
    they land in ``bench_output.txt``) and (b) persisted to
    ``benchmarks/results/<id>.txt`` for later inspection.
    """
    REPORTS.append((title, list(lines)))
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    slug = title.split()[0].lower().strip(":")
    path = os.path.join(results_dir, f"{slug}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(title + "\n")
        handle.write("-" * 72 + "\n")
        for line in lines:
            handle.write(line + "\n")


def render_report(title: str, lines: list[str]) -> list[str]:
    """Render one report as terminal lines."""
    rendered = ["", "=" * 72, title, "-" * 72]
    rendered.extend(lines)
    rendered.append("=" * 72)
    return rendered


def format_row(*cells, widths=None) -> str:
    widths = widths or [22] * len(cells)
    return "  ".join(str(c)[: w].ljust(w) for c, w in zip(cells, widths))
