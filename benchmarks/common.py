"""Shared infrastructure for the experiment benches.

Each bench file regenerates one row of DESIGN.md's per-experiment index:
it runs the experiment on the simulated stack, prints a paper-vs-measured
table through ``report()`` (visible in ``bench_output.txt``), and asserts
the claim's qualitative shape so the harness is self-checking.

Datasets are generated once per scale and cached for the whole pytest
session — loading dominates bench start-up otherwise.
"""

from __future__ import annotations

import os

from repro.storage.catalog import Catalog
from repro.storage.object_store import ObjectStore
from repro.workloads import LogsGenerator, TpchGenerator, load_dataset

_DATASET_CACHE: dict[tuple, tuple[ObjectStore, Catalog]] = {}

HEAVY_SQL = (
    "SELECT l_returnflag, l_linestatus, sum(l_extendedprice) AS revenue, "
    "count(*) AS n FROM lineitem GROUP BY l_returnflag, l_linestatus"
)
MEDIUM_SQL = (
    "SELECT o_orderstatus, count(*) AS n, sum(o_totalprice) AS total "
    "FROM orders GROUP BY o_orderstatus"
)
LIGHT_SQL = "SELECT count(*) FROM customer"


def tpch_environment(scale: float = 0.2, seed: int = 42):
    """(store, catalog) with a TPC-H dataset loaded — cached per scale."""
    key = ("tpch", scale, seed)
    if key not in _DATASET_CACHE:
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(store, catalog, "tpch", TpchGenerator(scale, seed).tables())
        _DATASET_CACHE[key] = (store, catalog)
    return _DATASET_CACHE[key]


def logs_environment(num_rows: int = 5000, seed: int = 7):
    """(store, catalog) with the web-log dataset loaded — cached."""
    key = ("logs", num_rows, seed)
    if key not in _DATASET_CACHE:
        store = ObjectStore()
        catalog = Catalog()
        load_dataset(
            store, catalog, "weblogs", [LogsGenerator(num_rows, seed).table()]
        )
        _DATASET_CACHE[key] = (store, catalog)
    return _DATASET_CACHE[key]


def write_observability_artifacts(slug: str, result, title: str) -> dict[str, str]:
    """Persist an observed replay's exports under ``benchmarks/results/``.

    Writes the time-series JSONL, alert transition log, autoscaler audit
    log, SLO record dump, and the rendered dashboard HTML — all
    deterministic, so re-runs diff cleanly.  Returns {kind: path}.
    Requires ``run_workload(observe=True)``.
    """
    from repro.obs.dashboard import render_dashboard_html

    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    data = result.dashboard_data(title)  # takes the final scrape
    artifacts = {
        "timeseries": (f"{slug}_timeseries.jsonl", result.timeseries.export_jsonl()),
        "alerts": (f"{slug}_alerts.jsonl", result.alerts.export_jsonl()),
        "audit": (
            f"{slug}_audit.jsonl",
            result.coordinator.vm_cluster.export_audit_jsonl(),
        ),
        "slo": (f"{slug}_slo.json", result.obs.slo.export_json() + "\n"),
        "dashboard": (f"{slug}_dashboard.html", render_dashboard_html(data)),
    }
    paths: dict[str, str] = {}
    for kind, (filename, payload) in artifacts.items():
        path = os.path.join(results_dir, filename)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        paths[kind] = path
    return paths


REPORTS: list[tuple[str, list[str]]] = []


def report(title: str, lines: list[str]) -> None:
    """Record an experiment table.

    Tables are (a) queued for the end-of-session terminal summary (the
    benchmarks' conftest flushes them after pytest's capture ends, so
    they land in ``bench_output.txt``) and (b) persisted to
    ``benchmarks/results/<id>.txt`` for later inspection.
    """
    REPORTS.append((title, list(lines)))
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    slug = title.split()[0].lower().strip(":")
    path = os.path.join(results_dir, f"{slug}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(title + "\n")
        handle.write("-" * 72 + "\n")
        for line in lines:
            handle.write(line + "\n")


def render_report(title: str, lines: list[str]) -> list[str]:
    """Render one report as terminal lines."""
    rendered = ["", "=" * 72, title, "-" * 72]
    rendered.extend(lines)
    rendered.append("=" * 72)
    return rendered


def format_row(*cells, widths=None) -> str:
    widths = widths or [22] * len(cells)
    return "  ".join(str(c)[: w].ljust(w) for c, w in zip(cells, widths))
