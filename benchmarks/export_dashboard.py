"""Export a demo session's operator dashboard and SLO artifacts.

Runs a small multi-level session with the observability stack on and
writes the full operator bundle into ``results/`` (or the directory
given as argv[1]):

* ``demo_dashboard.html`` — the self-contained static dashboard,
* ``demo_dashboard.txt``  — the console rendering,
* ``demo_timeseries.jsonl`` / ``demo_alerts.jsonl`` /
  ``demo_audit.jsonl`` / ``demo_slo.json`` — the raw exports.

Everything is virtual-clock-deterministic, so CI uploads the HTML as an
artifact and a dashboard-shape change shows up as a reviewable diff.

**CI gate:** exits with status 1 if any immediate-level query violated
its deadline — the paper's §3.2(1) "guaranteed immediate execution"
promise, checked on every push.

Usage: PYTHONPATH=../src python export_dashboard.py [results_dir]
"""

from __future__ import annotations

import pathlib
import sys

from repro import PixelsDB, ServiceLevel


def run_demo_session() -> PixelsDB:
    """A few minutes of mixed-level traffic against TPC-H data."""
    db = PixelsDB(observe=True, seed=5, scrape_interval_s=15.0)
    db.load_tpch("tpch", scale=0.01)
    mix = [
        ("SELECT COUNT(*) FROM nation", ServiceLevel.IMMEDIATE),
        (
            "SELECT c_mktsegment, COUNT(*) FROM customer "
            "GROUP BY c_mktsegment",
            ServiceLevel.RELAXED,
        ),
        ("SELECT COUNT(*) FROM region", ServiceLevel.BEST_EFFORT),
        (
            "SELECT o_orderstatus, COUNT(*) FROM orders "
            "GROUP BY o_orderstatus",
            ServiceLevel.IMMEDIATE,
        ),
        ("SELECT COUNT(*) FROM supplier", ServiceLevel.RELAXED),
        (
            "SELECT l_returnflag, COUNT(*) FROM lineitem "
            "GROUP BY l_returnflag",
            ServiceLevel.BEST_EFFORT,
        ),
    ]
    # Spread submissions over simulated minutes so the scrape loop sees
    # the cluster's state evolve rather than one instantaneous burst.
    for sql, level in mix:
        db.submit("tpch", sql, level)
        db.run(45.0)
    db.run_to_completion()
    return db


def export(results_dir: pathlib.Path) -> int:
    db = run_demo_session()
    results_dir.mkdir(parents=True, exist_ok=True)
    outputs = {
        "demo_dashboard.html": db.dashboard_html("PixelsDB demo session"),
        "demo_dashboard.txt": db.dashboard_text("PixelsDB demo session"),
        "demo_timeseries.jsonl": db.timeseries_jsonl(),
        "demo_alerts.jsonl": db.alerts_jsonl(),
        "demo_audit.jsonl": db.autoscaler_audit_jsonl(),
        "demo_slo.json": db.slo_json() + "\n",
    }
    for filename, payload in outputs.items():
        (results_dir / filename).write_text(payload, encoding="utf-8")
        print(f"wrote {results_dir / filename}")

    report = db.slo_report()["levels"]
    for name in sorted(report):
        level = report[name]
        compliance = level["compliance"]
        rendered = "-" if compliance is None else f"{100 * compliance:.1f}%"
        print(
            f"{name:<12} queries={level['queries']} "
            f"violations={level['violations']} compliance={rendered}"
        )

    immediate = report.get("immediate", {})
    if immediate.get("violations", 0) > 0:
        print(
            "FAIL: immediate-level deadline violations detected "
            f"({immediate['violations']} of {immediate['queries']} queries) "
            "— §3.2(1) guarantees immediate execution",
            file=sys.stderr,
        )
        return 1
    print("OK: no immediate-level deadline violations")
    return 0


if __name__ == "__main__":
    target = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "results")
    sys.exit(export(target))
