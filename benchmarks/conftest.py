"""Bench-session plumbing: flush experiment reports after capture ends."""

import common


def pytest_terminal_summary(terminalreporter):
    """Print every experiment's paper-vs-measured table at the end of the
    run, where pytest no longer captures output — this is what makes the
    tables appear in ``bench_output.txt``."""
    if not common.REPORTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("EXPERIMENT REPORTS (paper vs measured)")
    for title, lines in common.REPORTS:
        for rendered in common.render_report(title, lines):
            terminalreporter.write_line(rendered)
