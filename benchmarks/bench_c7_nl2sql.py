"""Experiment C7 — single-turn text-to-SQL quality (paper §1 and §3.3).

Paper claims:
* the text-to-SQL service "can translate natural language questions into
  executable SQL queries in a single turn with an accuracy of over 80%";
* schema pruning lets it handle "tables of any width, including those
  with thousands of columns, without being constrained by context
  truncation".

The bench measures execution accuracy on the synthetic Spider-style
benchmark over both datasets, then contrasts pruning against naive
context truncation on a 1500-column table.
"""

import pytest

from common import (
    bench_record,
    format_row,
    logs_environment,
    report,
    tpch_environment,
)
from repro.engine.executor import QueryExecutor
from repro.engine.optimizer import Optimizer
from repro.engine.planner import Planner
from repro.engine.source import ObjectStoreSource
from repro.nl2sql import Nl2SqlBenchmark, RuleBasedTranslator, SchemaPruner
from repro.nl2sql.benchmark import make_wide_schema

PAPER_ACCURACY = 0.80
CASES_PER_SCHEMA = 150


def make_runner(store, catalog, schema):
    planner = Planner(catalog, schema)
    optimizer = Optimizer()
    executor = QueryExecutor(ObjectStoreSource(store))

    def run_sql(sql):
        return executor.execute(optimizer.optimize(planner.plan_sql(sql))).rows()

    return run_sql


def run_experiment():
    reports = {}
    store, catalog = tpch_environment()
    bench = Nl2SqlBenchmark(catalog.schema("tpch"), seed=17)
    reports["tpch"] = bench.evaluate(
        bench.generate(CASES_PER_SCHEMA), make_runner(store, catalog, "tpch")
    )
    store, catalog = logs_environment()
    bench = Nl2SqlBenchmark(catalog.schema("weblogs"), seed=17)
    reports["weblogs"] = bench.evaluate(
        bench.generate(CASES_PER_SCHEMA), make_runner(store, catalog, "weblogs")
    )
    return reports


def wide_schema_contrast(num_columns=1500, budget=12):
    """Pruning vs naive truncation on a very wide table."""
    schema = make_wide_schema(num_columns)
    question = "what is the average sensor temperature"
    pruned = SchemaPruner(max_columns_per_table=budget).prune(schema, question)
    pruning_hit = any(
        sc.column.name == "sensor_temperature" for sc in pruned.columns
    )
    # Naive truncation: keep only the first `budget` columns of the table.
    table = schema.tables["telemetry"]
    truncation_hit = any(
        column.name == "sensor_temperature" for column in table.columns[:budget]
    )
    translation = RuleBasedTranslator(
        SchemaPruner(max_columns_per_table=budget)
    ).translate(schema, question)
    return pruning_hit, truncation_hit, translation.sql, len(pruned.serialize())


def accuracy_metrics(reports):
    metrics = {}
    for name, rep in sorted(reports.items()):
        metrics[f"{name}_correct"] = rep.correct
        metrics[f"{name}_total"] = rep.total
    return metrics


def test_c7_nl2sql(benchmark):
    reports = benchmark.pedantic(
        lambda: bench_record("c7", run_experiment, accuracy_metrics),
        rounds=1, iterations=1,
    )
    pruning_hit, truncation_hit, wide_sql, serialized_len = wide_schema_contrast()

    lines = [format_row("dataset", "paper accuracy", "measured accuracy")]
    for name, rep in reports.items():
        lines.append(
            format_row(
                name, "> 80%", f"{rep.accuracy:.1%} ({rep.correct}/{rep.total})"
            )
        )
    lines.append("")
    lines.append("per-template breakdown (tpch):")
    for template, (correct, total) in sorted(
        reports["tpch"].per_template().items()
    ):
        lines.append(f"  {template:<16} {correct}/{total}")
    lines += [
        "",
        "wide-table stress (1500 columns, 12-column context budget):",
        f"  schema pruning finds target column : {pruning_hit}",
        f"  naive truncation finds target column: {truncation_hit}",
        f"  translated SQL: {wide_sql}",
        f"  serialized pruned schema: {serialized_len} chars "
        f"(full schema would be ~50x larger)",
    ]
    report("C7  Text-to-SQL accuracy and schema pruning, paper §1/§3.3", lines)

    for rep in reports.values():
        assert rep.accuracy > PAPER_ACCURACY
    assert pruning_hit and not truncation_hit
    assert "avg(sensor_temperature)" in wide_sql
