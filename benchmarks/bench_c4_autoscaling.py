"""Experiment C4 — watermark auto-scaling on a bursty workload (§3.1).

Paper claims: the coordinator scales out when query concurrency exceeds
the high watermark (e.g. 5) and scales in, lazily, when the average
concurrency over a period falls below the low watermark (e.g. 0.75);
this is "effective for typical analytical workloads such as TPC-H".

The bench replays a bursty TPC-H arrival process with exactly those
watermarks and checks the scaling trace: scale-out events follow bursts,
scale-in events follow quiet periods, and the cluster returns to its
minimum size by the end.
"""

import numpy as np
import pytest

from common import (
    export_ledger_audit,
    HEAVY_SQL,
    bench_record,
    format_row,
    report,
    tpch_environment,
    workload_metrics,
    write_observability_artifacts,
)
from repro.baselines import run_workload
from repro.baselines.runner import Submission
from repro.core import ServiceLevel
from repro.sim.trace import downsample
from repro.turbo import TurboConfig
from repro.workloads import bursty_arrivals


def run_experiment():
    store, catalog = tpch_environment()
    rng = np.random.default_rng(4)
    arrivals = bursty_arrivals(
        rng, duration_s=3600, base_rate_per_s=0.01,
        burst_rate_per_s=0.8, burst_every_s=1200, burst_length_s=120,
    )
    submissions = [
        Submission(time, HEAVY_SQL, ServiceLevel.RELAXED) for time in arrivals
    ]
    config = TurboConfig.experiment()
    result = run_workload(
        submissions, store, catalog, "tpch", config, observe=True
    )
    return config, result


def test_c4_autoscaling(benchmark):
    config, result = benchmark.pedantic(
        lambda: bench_record(
            "c4", run_experiment, lambda pair: workload_metrics(pair[1])
        ),
        rounds=1, iterations=1,
    )
    cluster = result.coordinator.vm_cluster
    trace = result.coordinator.trace

    worker_series = trace.series("vm.workers")
    peak_workers = max(point.value for point in worker_series)
    final_workers = worker_series[-1].value
    scale_out_times = trace.times("vm.scale_out")
    scale_in_times = trace.times("vm.scale_in")

    lines = [
        format_row("quantity", "paper", "measured"),
        format_row("high watermark", "5", f"{config.vm.high_watermark}"),
        format_row("low watermark", "0.75", f"{config.vm.low_watermark}"),
        format_row("scale-out events", ">=1 per burst", f"{cluster.scale_out_events}"),
        format_row("scale-in events", ">=1 per quiet period", f"{cluster.scale_in_events}"),
        format_row("peak workers", "> min (1)", f"{int(peak_workers)}"),
        format_row("final workers", "back to min", f"{int(final_workers)}"),
        "",
        f"scale-out at: {[f'{t:.0f}s' for t in scale_out_times]}",
        f"scale-in  at: {[f'{t:.0f}s' for t in scale_in_times]}",
        "",
        "workers over time (120 s buckets):",
    ]
    for point in downsample(worker_series, 120.0):
        bar = "#" * int(point.value)
        lines.append(f"  t={point.time:6.0f}s  {bar} {int(point.value)}")
    audit = cluster.audit_log
    lines += ["", "autoscaler decision audit (first 8):"]
    for decision in audit[:8]:
        lines.append(
            f"  t={decision.time:6.0f}s {decision.action:<10} "
            f"trigger={decision.trigger_value:.2f} vs {decision.threshold:g}  "
            f"workers {decision.workers_before}{decision.delta:+d} "
            f"-> {decision.workers_target}"
        )
    export_ledger_audit("c4", result)
    paths = write_observability_artifacts(
        "c4", result, "C4 watermark auto-scaling"
    )
    lines += ["", f"observability artifacts: {sorted(paths)}"]
    report("C4  Watermark auto-scaling on a bursty workload, paper §3.1", lines)

    assert cluster.scale_out_events >= 2  # bursts at ~1200s and ~2400s
    assert cluster.scale_in_events >= 1
    assert peak_workers > 1
    assert final_workers == config.vm.min_workers
    assert all(q.status.value == "finished" for q in result.queries)
    # Scale-outs happen during/after bursts, not during the quiet start.
    assert min(scale_out_times) >= 1200.0
    # The audit log is 1:1 with the watermark-crossing counter.
    crossings = result.obs.metrics.get("pixels_vm_watermark_crossings_total")
    assert len([d for d in audit if d.action == "scale_out"]) == crossings.value(
        watermark="high"
    )
    assert len([d for d in audit if d.action == "scale_in"]) == crossings.value(
        watermark="low"
    )
    # The scrape loop sampled worker counts on its fixed cadence too.
    ts_workers = result.timeseries.series("pixels_vm_workers")
    assert max(v for _, v in ts_workers) == peak_workers
